"""Unit tests for the Pregel+ baseline engine itself."""

import numpy as np
import pytest

from repro.core.combiner import MIN_I64, SUM_I64
from repro.graph.graph import Graph
from repro.pregel import PregelPlusEngine, PregelProgram
from repro.runtime.serialization import INT64, struct_codec, INT32
from helpers import line_graph


class Echo(PregelProgram):
    """Everyone sends its id to vertex 0 in step 1."""

    message_codec = INT64

    def __init__(self, worker):
        super().__init__(worker)
        self.got = {}

    def compute(self, v, messages):
        if self.step_num == 1:
            v.send_message(0, v.id)
        else:
            self.got[v.id] = sorted(int(m) for m in messages)
        v.vote_to_halt()

    def finalize(self):
        return self.got


class TestBasicMode:
    def test_message_lists_without_combiner(self):
        res = PregelPlusEngine(line_graph(4), Echo, num_workers=2).run()
        assert res.data[0] == [0, 1, 2, 3]

    def test_combined_delivery(self):
        class P(Echo):
            combiner = MIN_I64

            def compute(self, v, messages):
                if self.step_num == 1:
                    v.send_message(0, v.id + 10)
                else:
                    self.got[v.id] = messages  # scalar, already combined
                v.vote_to_halt()

        res = PregelPlusEngine(line_graph(4), P, num_workers=2).run()
        assert res.data[0] == 10

    def test_no_message_is_none_with_combiner(self):
        class P(PregelProgram):
            combiner = MIN_I64
            message_codec = INT64

            def __init__(self, worker):
                super().__init__(worker)
                self.seen = {}

            def compute(self, v, messages):
                self.seen[v.id] = messages
                v.vote_to_halt()

            def finalize(self):
                return self.seen

        res = PregelPlusEngine(line_graph(3), P, num_workers=2).run()
        assert all(v is None for v in res.data.values())

    def test_structured_monolithic_type(self):
        tagged = struct_codec([("tag", INT32), ("val", INT32)])

        class P(PregelProgram):
            message_codec = tagged

            def __init__(self, worker):
                super().__init__(worker)
                self.got = {}

            def compute(self, v, messages):
                if self.step_num == 1:
                    v.send_message(0, (7, v.id))
                else:
                    self.got[v.id] = sorted(messages)
                v.vote_to_halt()

            def finalize(self):
                return self.got

        res = PregelPlusEngine(line_graph(3), P, num_workers=2).run()
        assert res.data[0] == [(7, 0), (7, 1), (7, 2)]

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            PregelPlusEngine(line_graph(2), Echo, mode="turbo")

    def test_request_outside_reqresp_mode_rejected(self):
        class P(PregelProgram):
            def compute(self, v, messages):
                v.request(0)

        with pytest.raises(RuntimeError, match="reqresp"):
            PregelPlusEngine(line_graph(2), P, mode="basic", num_workers=1).run()

    def test_aggregate_without_declaration_rejected(self):
        class P(PregelProgram):
            def compute(self, v, messages):
                self.aggregate(1)

        with pytest.raises(RuntimeError, match="aggregator"):
            PregelPlusEngine(line_graph(2), P, num_workers=1).run()


class TestAggregator:
    def test_sum_and_timing(self):
        class P(PregelProgram):
            aggregator_combiner = SUM_I64

            def __init__(self, worker):
                super().__init__(worker)
                self.seen = []

            def compute(self, v, messages):
                if v.id == 0:
                    self.seen.append(self.agg_result)
                if self.step_num == 1:
                    self.aggregate(1)
                if self.step_num >= 2:
                    v.vote_to_halt()

            def finalize(self):
                return {"seen": self.seen} if self.seen else {}

        res = PregelPlusEngine(line_graph(5), P, num_workers=2).run()
        assert res.data["seen"] == [None, 5]


class TestReqRespMode:
    def test_dedup_and_echo_format(self):
        class P(PregelProgram):
            message_codec = INT64

            def __init__(self, worker):
                super().__init__(worker)
                self.attr = worker.local_ids * 3
                self.got = {}

            def respond_value(self, local_idx):
                return int(self.attr[local_idx])

            def compute(self, v, messages):
                if self.step_num == 1:
                    v.request(0)
                else:
                    self.got[v.id] = int(v.get_resp(0))
                v.vote_to_halt()

        part = np.array([0, 1, 1, 1])
        engine = PregelPlusEngine(
            line_graph(4), P, num_workers=2, partition=part, mode="reqresp"
        )
        res = engine.run()
        # all of worker 1's requests for vertex 0 dedup to one wire id;
        # the response echoes (id, value): 4B + 8B
        # worker 0's self-request is local
        assert res.metrics.total_messages == 2

    def test_only_requesters_wake(self):
        class P(PregelProgram):
            message_codec = INT64

            def __init__(self, worker):
                super().__init__(worker)
                self.computed = []

            def respond_value(self, local_idx):
                return 1

            def compute(self, v, messages):
                self.computed.append((self.step_num, v.id))
                if self.step_num == 1 and v.id == 0:
                    v.request(2)
                v.vote_to_halt()

            def finalize(self):
                return {f"w{self.worker.worker_id}": self.computed}

        res = PregelPlusEngine(
            line_graph(3),
            P,
            num_workers=1,
            mode="reqresp",
        ).run()
        computed = res.data["w0"]
        # step 1: everyone; step 2: only vertex 0 (the requester) —
        # the responder (vertex 2) is answered by the system, not compute()
        assert (2, 0) in computed
        assert (2, 2) not in computed and (2, 1) not in computed


class TestGhostMode:
    def test_mirror_expansion_correct(self):
        class P(PregelProgram):
            message_codec = INT64
            combiner = SUM_I64

            def __init__(self, worker):
                super().__init__(worker)
                self.got = {}

            def compute(self, v, messages):
                if self.step_num == 1:
                    v.broadcast(v.id + 1)
                else:
                    self.got[v.id] = messages
                v.vote_to_halt()

            def finalize(self):
                return self.got

        from repro.graph import star

        g = star(10, center=0)
        part = np.zeros(10, dtype=np.int64)
        part[5:] = 1
        basic = PregelPlusEngine(g, P, num_workers=2, partition=part, mode="basic").run()
        ghost = PregelPlusEngine(
            g, P, num_workers=2, partition=part, mode="ghost", ghost_threshold=3
        ).run()
        assert basic.data == ghost.data
        assert ghost.metrics.total_net_bytes < basic.metrics.total_net_bytes

    def test_low_degree_vertices_unaffected(self):
        class P(PregelProgram):
            message_codec = INT64

            def __init__(self, worker):
                super().__init__(worker)
                self.got = {}

            def compute(self, v, messages):
                if self.step_num == 1:
                    v.broadcast(5)
                else:
                    self.got[v.id] = sorted(messages)
                v.vote_to_halt()

            def finalize(self):
                return self.got

        g = line_graph(4)  # max degree 2 < threshold
        res = PregelPlusEngine(g, P, num_workers=2, mode="ghost", ghost_threshold=16).run()
        assert res.data[1] == [5, 5]
