"""Benchmark helpers.

Every benchmark runs one experiment *cell* (Tables IV–VII) exactly once —
the engines are deterministic, and a cell is seconds-long, so repeated
rounds would only slow the suite.  The paper's metrics (simulated
runtime, message MB, supersteps) land in ``extra_info`` next to the
wall-clock numbers pytest-benchmark reports.
"""

import pytest

from repro.bench.runner import run_cell


@pytest.fixture
def cell(benchmark):
    """Run one (algorithm, program, dataset) cell under the benchmark."""

    def _run(algorithm, program, dataset, partitioned=False, **kwargs):
        row = benchmark.pedantic(
            run_cell,
            args=(algorithm, program, dataset, partitioned),
            kwargs=kwargs,
            rounds=1,
            iterations=1,
            warmup_rounds=0,
        )
        benchmark.extra_info.update(row)
        return row

    return _run
