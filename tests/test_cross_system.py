"""Cross-system agreement battery: every system that implements an
algorithm must produce identical results on a gallery of graph shapes.

This is the strongest integration check in the suite — it exercises the
channel engine, the Pregel+ baseline, Blogel, and the Palgol compiler on
the same inputs, through their public runners.
"""

import numpy as np
import pytest

from repro.algorithms import (
    run_pagerank,
    run_pointer_jumping,
    run_sssp,
    run_sv,
    run_wcc,
)
from repro.algorithms.scc import run_scc
from repro.blogel import run_wcc_blogel
from repro.graph import chain, erdos_renyi, grid_road, random_tree, rmat, star
from repro.graph.graph import Graph
from repro.palgol import run_palgol, sv_spec, wcc_spec
from repro.pregel_algorithms import (
    run_pagerank_pregel,
    run_pointer_jumping_pregel,
    run_scc_pregel,
    run_sssp_pregel,
    run_sv_pregel,
    run_wcc_pregel,
)

UNDIRECTED_GALLERY = [
    ("power-law", lambda: rmat(7, edge_factor=2, seed=1, directed=False)),
    ("dense", lambda: erdos_renyi(80, avg_degree=10, seed=2, directed=False)),
    ("mesh", lambda: grid_road(8, 9, seed=3, weighted=False)),
    ("hub", lambda: star(40, center=7)),
    ("sparse+isolated", lambda: Graph.from_edges(30, [(0, 1), (5, 6), (6, 7)], directed=False)),
]

DIRECTED_GALLERY = [
    ("power-law", lambda: rmat(7, edge_factor=3, seed=4, directed=True)),
    ("dag", lambda: Graph.from_edges(12, [(i, j) for i in range(12) for j in range(i + 1, min(i + 3, 12))], directed=True)),
    ("cycle", lambda: Graph.from_edges(15, [(i, (i + 1) % 15) for i in range(15)], directed=True)),
]


@pytest.mark.parametrize("name,make", UNDIRECTED_GALLERY, ids=[g[0] for g in UNDIRECTED_GALLERY])
def test_components_five_ways(name, make):
    """S-V (all variants), WCC (both variants), Pregel+, Blogel, and the
    Palgol compiler all agree on connected components."""
    g = make()
    ref, _ = run_sv(g, variant="basic", num_workers=3)
    for result in [
        run_sv(g, variant="both", num_workers=3)[0],
        run_wcc(g, variant="basic", num_workers=3)[0],
        run_wcc(g, variant="prop", num_workers=3)[0],
        run_sv_pregel(g, mode="reqresp", num_workers=3)[0],
        run_wcc_pregel(g, num_workers=3)[0],
        run_wcc_blogel(g, num_workers=3)[0],
        run_palgol(sv_spec(), g, optimize=True, num_workers=3)[0]["D"],
        run_palgol(wcc_spec(), g, optimize=False, num_workers=3)[0]["label"],
    ]:
        np.testing.assert_array_equal(result, ref)


@pytest.mark.parametrize("name,make", DIRECTED_GALLERY, ids=[g[0] for g in DIRECTED_GALLERY])
def test_scc_three_ways(name, make):
    g = make()
    ref, _ = run_scc(g, variant="basic", num_workers=3)
    np.testing.assert_array_equal(run_scc(g, variant="prop", num_workers=3)[0], ref)
    np.testing.assert_array_equal(run_scc_pregel(g, num_workers=3)[0], ref)


@pytest.mark.parametrize(
    "make",
    [lambda: random_tree(150, seed=8), lambda: chain(90)],
    ids=["tree", "chain"],
)
def test_pointer_jumping_four_ways(make):
    g = make()
    ref, _ = run_pointer_jumping(g, variant="basic", num_workers=3)
    for result in [
        run_pointer_jumping(g, variant="reqresp", num_workers=3)[0],
        run_pointer_jumping_pregel(g, mode="basic", num_workers=3)[0],
        run_pointer_jumping_pregel(g, mode="reqresp", num_workers=3)[0],
    ]:
        np.testing.assert_array_equal(result, ref)


def test_pagerank_four_ways():
    g = rmat(7, edge_factor=4, seed=9, directed=True)
    ref, _ = run_pagerank(g, variant="basic", iterations=8, num_workers=3)
    for result in [
        run_pagerank(g, variant="scatter", iterations=8, num_workers=3)[0],
        run_pagerank(g, variant="mirror", iterations=8, num_workers=3)[0],
        run_pagerank_pregel(g, mode="basic", iterations=8, num_workers=3)[0],
        run_pagerank_pregel(g, mode="ghost", iterations=8, num_workers=3)[0],
    ]:
        np.testing.assert_allclose(result, ref, atol=1e-13)


def test_sssp_three_ways():
    g = grid_road(9, 10, seed=5)
    src = int(g.out_degrees.argmax())
    ref, _ = run_sssp(g, source=src, variant="basic", num_workers=3)
    for result in [
        run_sssp(g, source=src, variant="prop", num_workers=3)[0],
        run_sssp_pregel(g, source=src, num_workers=3)[0],
    ]:
        finite = np.isfinite(ref)
        np.testing.assert_allclose(result[finite], ref[finite], atol=1e-9)
        assert np.all(np.isinf(result[~finite]))


@pytest.mark.parametrize("workers", [1, 2, 5, 9])
def test_worker_count_never_changes_results(workers):
    """One partition-independence sweep over the headline algorithm."""
    g = rmat(7, edge_factor=2, seed=6, directed=False)
    ref, _ = run_sv(g, variant="both", num_workers=3)
    got, _ = run_sv(g, variant="both", num_workers=workers)
    np.testing.assert_array_equal(got, ref)
