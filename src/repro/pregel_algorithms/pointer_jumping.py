"""Pointer jumping on the Pregel+ baseline (basic and reqresp modes)."""

from __future__ import annotations

import numpy as np

from repro.algorithms._common import gather
from repro.graph.graph import Graph
from repro.pregel import PregelPlusEngine, PregelProgram
from repro.runtime.serialization import INT32

__all__ = ["PJPregelBasic", "PJPregelReqResp", "run_pointer_jumping_pregel"]


def _init_parent(v) -> int:
    nb = v.edges
    return int(nb[0]) if nb.size else v.id


class PJPregelBasic(PregelProgram):
    """Parity-scheduled basic pointer jumping.

    With one monolithic int32 message type, requester ids and pointer
    replies are indistinguishable by content, so the conversation is
    scheduled by superstep parity: odd supersteps send/receive replies
    (jump), even supersteps deliver requests (answer them).  One jump
    therefore costs two supersteps — the cost the reqresp pattern halves.
    """

    message_codec = INT32

    def __init__(self, worker):
        super().__init__(worker)
        self.D = np.zeros(worker.num_local, dtype=np.int64)
        self.done = np.zeros(worker.num_local, dtype=bool)

    def compute(self, v, messages) -> None:
        i = v.local
        if self.step_num == 1:
            self.D[i] = _init_parent(v)
            if self.D[i] == v.id:
                self.done[i] = True
                v.vote_to_halt()
            else:
                v.send_message(int(self.D[i]), v.id)
            return
        msgs = messages if messages else []
        if self.step_num % 2 == 0:
            # request-delivery superstep: answer each requester
            d = int(self.D[i])
            for requester in msgs:
                v.send_message(int(requester), d)
            if self.done[i]:
                v.vote_to_halt()
        else:
            # reply-delivery superstep: jump
            if self.done[i]:
                v.vote_to_halt()
                return
            if msgs:
                p = int(self.D[i])
                gp = int(msgs[0])
                if gp == p:
                    self.done[i] = True
                    v.vote_to_halt()
                else:
                    self.D[i] = gp
                    v.send_message(gp, v.id)

    def finalize(self) -> dict:
        return {int(g): int(self.D[i]) for i, g in enumerate(self.worker.local_ids)}


class PJPregelReqResp(PregelProgram):
    """Pregel+ reqresp-mode pointer jumping (the paper's Table V row that
    is *slower* than basic despite fewer bytes, due to per-request hash
    bookkeeping and (id, value) response echoes)."""

    message_codec = INT32

    def __init__(self, worker):
        super().__init__(worker)
        self.D = np.zeros(worker.num_local, dtype=np.int64)

    def respond_value(self, local_idx: int):
        return int(self.D[local_idx])

    def compute(self, v, messages) -> None:
        i = v.local
        if self.step_num == 1:
            self.D[i] = _init_parent(v)
            if self.D[i] == v.id:
                v.vote_to_halt()
            else:
                v.request(int(self.D[i]))
            return
        p = int(self.D[i])
        gp = int(v.get_resp(p))
        if gp == p:
            v.vote_to_halt()
        else:
            self.D[i] = gp
            v.request(gp)

    def finalize(self) -> dict:
        return {int(g): int(self.D[i]) for i, g in enumerate(self.worker.local_ids)}


def run_pointer_jumping_pregel(graph: Graph, mode: str = "basic", **engine_kwargs):
    """Run Pregel+ pointer jumping; ``mode`` is ``"basic"`` or
    ``"reqresp"``.  Returns ``(roots, EngineResult)``."""
    program = {"basic": PJPregelBasic, "reqresp": PJPregelReqResp}[mode]
    engine = PregelPlusEngine(graph, program, mode=mode, **engine_kwargs)
    result = engine.run()
    return gather(result, graph.num_vertices), result
