"""The pluggable execution-backend seam (ARCHITECTURE.md §8).

The paper's channel engine is *one* abstraction with many possible
execution strategies; this module makes that literal.
:class:`ExecutorBackend` owns the superstep drive loop of Fig. 4 —
barrier votes, compute dispatch, exchange rounds, checkpoint cadence,
failure injection, recovery dispatch, result collection — as a template
method (:meth:`ExecutorBackend.run`) over a small set of primitives each
backend implements:

``begin_run``
    Bring the execution substrate up (channel initialization; for the
    process backend also pool spawn/reconfigure).
``barrier_vote``
    Resolve every worker's active set for the next superstep and return
    the global active count (0 terminates the run).
``compute_phase`` / ``exchange_phase``
    One superstep's vertex compute and channel exchange rounds.  The
    exchange phase maintains the sender-side frame log when confined
    recovery is armed.
``capture_state_blobs``
    Per-worker serialized state in the checkpoint capture format
    (:func:`repro.runtime.checkpoint.capture_worker_state`).
``recover``
    React to injected worker deaths with the requested recovery mode.
``collect_results``
    Merge per-worker ``finalize()`` outputs after termination.

Because checkpoint cadence, failure timing, frame-log bookkeeping, and
termination live in the shared template, every fault-tolerance and
streaming feature composes with every backend by construction — the
fault-tolerant superstep choreography cannot drift between them.

Two implementations exist: :class:`SimBackend` here (the in-process
simulated cluster, lifted verbatim out of the old
``ChannelEngine._run``) and
:class:`~repro.runtime.parallel.backend.ProcessBackend` (one OS process
per worker over a persistent :class:`~repro.runtime.parallel.pool.WorkerPool`).
Both produce bit-identical result data, per-channel traffic, and
byte/message totals for the same program.
"""

from __future__ import annotations

import time
import warnings
from typing import TYPE_CHECKING

import numpy as np

from repro.core.recovery import (
    FailureSchedule,
    FrameLog,
    confined_recovery,
    rollback_recovery,
)
from repro.runtime.buffers import BufferExchange
from repro.runtime.checkpoint import (
    SNAPSHOT_VERSION,
    Snapshot,
    capture_worker_state,
    encode_state,
    load_worker_state,
)
from repro.runtime.rebalance import (
    MigrationContext,
    phase_matrix,
    remap_worker_states,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import ChannelEngine, EngineResult

__all__ = ["ExecutorBackend", "SimBackend"]


class ExecutorBackend:
    """Drives one engine's program to termination (template method).

    A backend instance is owned by its :class:`ChannelEngine` and lives
    as long as the engine does — it may be asked to :meth:`run` more
    than once (a second run over an all-halted program is a no-op that
    returns the same results on every backend).
    """

    #: the engine's ``executor=`` name for this backend
    name = "?"

    def __init__(self, engine: "ChannelEngine") -> None:
        self.engine = engine

    # -- the drive loop (shared across backends) ---------------------------
    def run(
        self,
        max_supersteps: int = 100_000,
        checkpoint_every: int | None = None,
        failures: FailureSchedule | None = None,
        recovery: str = "rollback",
    ) -> "EngineResult":
        """Run to termination.  Arguments arrive validated and coerced by
        :meth:`ChannelEngine.run` (the single validation point)."""
        from repro.core.engine import EngineResult

        engine = self.engine
        metrics = engine.metrics
        fault_tolerant = checkpoint_every is not None or bool(failures)

        engine.frame_log = (
            FrameLog(engine.num_workers)
            if bool(failures) and recovery == "confined"
            else None
        )

        metrics.start_run()
        self.begin_run(fault_tolerant)

        if fault_tolerant:
            # superstep-0 checkpoint: recovery is possible before the
            # first periodic checkpoint is due
            self.take_checkpoint()

        while True:
            t_barrier = time.perf_counter()
            total_active = self.barrier_vote()
            barrier_seconds = time.perf_counter() - t_barrier
            if total_active == 0:
                break
            engine.step_num += 1
            if engine.step_num > max_supersteps:
                raise RuntimeError(
                    f"exceeded max_supersteps={max_supersteps}; "
                    "the program may not terminate"
                )
            metrics.start_superstep(total_active)
            # the vote is a global sync point every worker waits through,
            # so the whole collection time is charged to each of them
            for w in range(engine.num_workers):
                metrics.record_phase(w, "barrier", barrier_seconds)
            self.compute_phase()
            self.exchange_phase()
            metrics.end_superstep()

            # live telemetry boundary: sim publishes all slots here (the
            # process backend's children already published their own), then
            # the monitor scores the fresh readings online
            if engine.live is not None:
                self.publish_live()
                if engine.monitor is not None:
                    engine.monitor.observe(engine.step_num)

            # superstep boundary: rebalance first (a migration changes
            # what any checkpoint taken below must capture)
            migrated = False
            if (
                engine.rebalance == "superstep"
                and engine.rebalancer is not None
                and engine.step_num % engine.rebalance_every == 0
            ):
                migrated = self.maybe_rebalance()

            # then checkpoint, then inject failures
            if fault_tolerant:
                if migrated or (
                    checkpoint_every is not None
                    and engine.step_num % checkpoint_every == 0
                ):
                    # after a migration the recapture is mandatory: the
                    # previous snapshot (and any logged frames, truncated
                    # by take_checkpoint) reference the old ownership
                    self.take_checkpoint()
                doomed = failures.pop(engine.step_num) if failures else []
                if doomed:
                    metrics.record_failure(len(doomed))
                    self.recover(doomed, recovery)

        if failures and failures.pending():
            # warn, don't raise: the results are still valid (nothing was
            # injected), but anyone measuring recovery must find out that
            # they actually measured a failure-free run
            warnings.warn(
                f"failure schedule events never fired — the run ended after "
                f"{engine.step_num} supersteps: {failures.pending()}",
                RuntimeWarning,
                stacklevel=3,
            )

        metrics.end_run()
        result = EngineResult(metrics=metrics)
        if engine.monitor is not None:
            result.live_alerts = list(engine.monitor.alerts)
        result.data.update(self.collect_results())
        return result

    # -- shared fault-tolerance choreography --------------------------------
    def take_checkpoint(self) -> None:
        """Checkpoint every worker at the current superstep boundary and
        make it the engine's recovery point."""
        engine = self.engine
        snapshot = Snapshot(
            version=SNAPSHOT_VERSION,
            superstep=engine.step_num,
            blobs=self.capture_state_blobs(),
            metrics_state=engine.metrics.snapshot(),
        )
        engine.checkpoint = snapshot
        engine.metrics.record_checkpoint(snapshot.worker_nbytes)
        if engine.live is not None:
            # rollback recovery will rewind live counters to this boundary
            self.live_mark()
        if engine.frame_log is not None:
            # frames covered by this checkpoint can never be replayed
            engine.frame_log.truncate_before(snapshot.superstep)

    # -- shared rebalancing choreography -------------------------------------
    def maybe_rebalance(self) -> bool:
        """Ask the engine's policy for a migration plan over the phase
        timings observed so far and execute it at this barrier; returns
        whether a migration happened.  The plan is a pure function of
        (owner, indptr, matrix), so every backend migrates identically."""
        engine = self.engine
        policy = engine.rebalancer
        plan = policy.propose(
            engine.owner,
            engine.graph.indptr,
            phase_matrix(engine.metrics, window=policy.window),
        )
        if plan is None:
            return False
        t0 = time.perf_counter()
        self.migrate(plan)
        seconds = time.perf_counter() - t0
        engine.metrics.record_rebalance(plan, trigger="superstep", seconds=seconds)
        if engine.live is not None:
            touched = sorted({w for move in plan.moves for w in move[2:]})
            for w in touched:
                engine.live.bump_rebalance(w)
        return True

    def migrate(self, plan) -> None:
        """Move vertex ownership (and all per-vertex state) per ``plan``
        at the current quiescent superstep boundary."""
        raise NotImplementedError

    # -- backend primitives --------------------------------------------------
    def begin_run(self, fault_tolerant: bool) -> None:
        raise NotImplementedError

    def barrier_vote(self) -> int:
        raise NotImplementedError

    def compute_phase(self) -> None:
        raise NotImplementedError

    def exchange_phase(self) -> None:
        raise NotImplementedError

    def capture_state_blobs(self) -> list[bytes]:
        raise NotImplementedError

    def recover(self, doomed: list[int], mode: str) -> None:
        raise NotImplementedError

    def collect_results(self) -> dict:
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release backend resources (idempotent; a no-op for sim)."""

    # -- live telemetry hooks (ARCHITECTURE.md §11) --------------------------
    def publish_live(self) -> None:
        """Refresh the engine's live metrics slots after a superstep.  The
        process backend's children publish their own slots autonomously,
        so its override is this no-op; sim publishes all slots here."""

    def live_mark(self) -> None:
        """Checkpoint boundary: remember live counters for a later rewind
        (process children mark inside their ``capture`` command)."""


class SimBackend(ExecutorBackend):
    """The in-process simulated cluster: every worker runs sequentially in
    this process, compute is charged as the max over workers (parallel
    makespan), and network time comes from the cost model.  This is the
    reference backend — the process backend's parity matrix is defined
    against it."""

    name = "sim"

    def __init__(self, engine: "ChannelEngine") -> None:
        super().__init__(engine)
        self._exchange = BufferExchange(engine.metrics)
        self._active_sets: list = []
        self._live_writers: list | None = None
        self._live_step: dict | None = None

    # -- primitives ----------------------------------------------------------
    def begin_run(self, fault_tolerant: bool) -> None:
        if self.engine.live is not None and self._live_writers is None:
            # created once per engine, never reset on a re-run: a second
            # run over a halted program adds zero supersteps, and the live
            # counters must keep matching the (also untouched) collector
            self._live_writers = [
                self.engine.live.writer(w) for w in range(self.engine.num_workers)
            ]
        for worker in self.engine.workers:
            for channel in worker.channels:
                channel.initialize()

    def barrier_vote(self) -> int:
        # phase controllers may wake vertices for the upcoming superstep
        for worker in self.engine.workers:
            worker.program.before_superstep()
        self._active_sets = [w.begin_superstep() for w in self.engine.workers]
        return sum(a.size for a in self._active_sets)

    def compute_phase(self) -> None:
        # vertex compute (parallel across workers -> charge max); each
        # worker dispatches scalar (per-vertex) or bulk (whole-active-set)
        # per its program's is_bulk flag
        metrics = self.engine.metrics
        track = self._live_writers is not None
        if track:
            n = self.engine.num_workers
            self._live_step = {"net": [0] * n, "local": [0] * n, "messages": [0] * n}
        for worker, active in zip(self.engine.workers, self._active_sets):
            before = metrics.current_messages if track else 0
            t0 = time.perf_counter()
            worker.run_compute(active)
            seconds = time.perf_counter() - t0
            metrics.record_compute(worker.worker_id, seconds)
            metrics.record_phase(worker.worker_id, "compute", seconds)
            if track:
                # workers run sequentially here, so bracketing the shared
                # collector's message count attributes exactly
                self._live_step["messages"][worker.worker_id] += (
                    metrics.current_messages - before
                )

    def exchange_phase(self) -> None:
        engine = self.engine
        metrics = engine.metrics
        for worker in engine.workers:
            for channel in worker.channels:
                channel.reset_round()

        group_active = [True] * engine.num_channels
        step_log: list[tuple[list[bool], list[list[bytes]]]] | None = (
            [] if engine.frame_log is not None else None
        )

        while any(group_active):
            # serialize
            wrote = False
            track = self._live_step is not None
            for worker in engine.workers:
                before = metrics.current_messages if track else 0
                t0 = time.perf_counter()
                for cid, channel in enumerate(worker.channels):
                    if group_active[cid]:
                        channel.serialize()
                seconds = time.perf_counter() - t0
                metrics.record_compute(worker.worker_id, seconds)
                metrics.record_phase(worker.worker_id, "serialize", seconds)
                net, local = worker.buffers.out_nbytes()
                wrote = wrote or net > 0 or local > 0
                if track:
                    st = self._live_step
                    st["net"][worker.worker_id] += int(net)
                    st["local"][worker.worker_id] += int(local)
                    st["messages"][worker.worker_id] += (
                        metrics.current_messages - before
                    )

            if not wrote and not any(group_active):  # pragma: no cover
                break

            if step_log is not None:
                # sender-side frame log for confined recovery: every
                # cross-worker buffer of this round, captured pre-exchange
                frames = [
                    [
                        b""
                        if peer == worker.worker_id
                        else worker.buffers.out[peer].getvalue()
                        for peer in range(engine.num_workers)
                    ]
                    for worker in engine.workers
                ]
                step_log.append((list(group_active), frames))
                metrics.record_log_bytes(
                    sum(len(buf) for row in frames for buf in row)
                )

            # pairwise exchange (accounted by the cost model)
            t0 = time.perf_counter()
            self._exchange.exchange([w.buffers for w in engine.workers])
            swap_seconds = time.perf_counter() - t0
            # the swap is one shared memcpy pass here; like the barrier,
            # it's a global step every worker sits through
            for w in range(engine.num_workers):
                metrics.record_phase(w, "exchange", swap_seconds)

            # deserialize + decide on another round
            next_active = [False] * engine.num_channels
            for worker in engine.workers:
                before = metrics.current_messages if track else 0
                t0 = time.perf_counter()
                routed = worker.route_inbox()
                for cid, channel in enumerate(worker.channels):
                    if group_active[cid]:
                        channel.deserialize(routed.get(cid, []))
                        if channel.again():
                            next_active[cid] = True
                    elif cid in routed:  # pragma: no cover - defensive
                        raise RuntimeError(
                            f"data arrived for inactive channel {cid}"
                        )
                seconds = time.perf_counter() - t0
                metrics.record_compute(worker.worker_id, seconds)
                metrics.record_phase(worker.worker_id, "serialize", seconds)
                if track:
                    self._live_step["messages"][worker.worker_id] += (
                        metrics.current_messages - before
                    )
            group_active = next_active

        if step_log is not None:
            engine.frame_log.append_step(engine.step_num, step_log)

    def capture_state_blobs(self) -> list[bytes]:
        return [encode_state(capture_worker_state(w)) for w in self.engine.workers]

    def migrate(self, plan) -> None:
        # capture under the old ownership, remap, rebuild every worker
        # under the new one, load.  The active sets refresh at the next
        # barrier vote from the (remapped) halted/woken flags; the live
        # writers are per-slot and carry no worker references
        engine = self.engine
        states = [capture_worker_state(w) for w in engine.workers]
        ctx = MigrationContext(engine.owner, plan.new_owner, engine.num_workers)
        new_states = remap_worker_states(states, ctx, engine.workers[0].channels)
        engine.owner = np.asarray(plan.new_owner, dtype=np.int64)
        for w in range(engine.num_workers):
            engine.rebuild_worker(w)
            load_worker_state(engine.workers[w], new_states[w])

    def recover(self, doomed: list[int], mode: str) -> None:
        if mode == "confined":
            confined_recovery(self.engine, doomed)
        else:
            rollback_recovery(self.engine, doomed)
            if self._live_writers is not None:
                # the collector rolled back to the checkpoint; so does the
                # live plane (re-executed supersteps re-accumulate)
                for writer in self._live_writers:
                    writer.rewind()

    # -- live telemetry ------------------------------------------------------
    def publish_live(self) -> None:
        if self._live_writers is None:
            return
        rec = self.engine.metrics.records[-1]
        step = self._live_step
        for w, writer in enumerate(self._live_writers):
            writer.add(
                superstep=1,
                active=int(self._active_sets[w].size),
                rounds=rec.rounds,
                net_bytes=0 if step is None else step["net"][w],
                local_bytes=0 if step is None else step["local"][w],
                messages=0 if step is None else step["messages"][w],
                **{phase: seconds[w] for phase, seconds in rec.phases.items()},
            )
            writer.publish()
        self._live_step = None

    def live_mark(self) -> None:
        if self._live_writers is not None:
            for writer in self._live_writers:
                writer.mark()

    def collect_results(self) -> dict:
        data: dict = {}
        for worker in self.engine.workers:
            data.update(worker.program.finalize())
        return data
