"""Streaming-graph subsystem: mutation batches, epoch engine, incremental
recomputation.

The fifth architecture layer (see ARCHITECTURE.md §6).  The one-shot
stack computes over an immutable CSR; this layer makes the graph a
*moving target*:

* :class:`MutationBatch` — validated edge/vertex insertions & deletions.
* :class:`DeltaGraph` — overlay above the immutable CSR, with LSM-style
  compaction back to a fresh base.
* :class:`EpochEngine` — repeated ``apply(batch) -> refresh`` cycles on
  top of :class:`~repro.core.engine.ChannelEngine`, seeding each refresh
  from the delta-affected region.
* Incremental PageRank / WCC / SSSP — refresh programs whose output is
  **bit-identical** to a cold full run on the mutated graph.

Quick start::

    from repro.streaming import EpochEngine, PageRankStream, synthesize_stream

    eng = EpochEngine(graph, PageRankStream(iterations=10), num_workers=8)
    for batch in synthesize_stream(graph, num_epochs=3,
                                   insertions_per_epoch=50,
                                   deletions_per_epoch=50):
        epoch = eng.run_epoch(batch)
        print(epoch.summary())
"""

from repro.streaming.batch import MutationBatch
from repro.streaming.delta import ApplyStats, DeltaGraph
from repro.streaming.epoch import EpochEngine, EpochResult
from repro.streaming.incremental_pagerank import (
    PageRankIncrementalBulk,
    PageRankSchedule,
    PageRankStream,
    build_pagerank_schedule,
)
from repro.streaming.incremental_sssp import SSSPIncrementalBulk, SSSPStream
from repro.streaming.incremental_wcc import WCCIncrementalBulk, WCCStream
from repro.streaming.plan import RefreshPlan, StreamAlgorithm
from repro.streaming.updates import synthesize_batch, synthesize_stream

#: CLI / benchmark registry: name -> StreamAlgorithm factory (kwargs are
#: algorithm parameters, e.g. ``iterations`` or ``source``)
STREAM_ALGORITHMS = {
    "pagerank": PageRankStream,
    "wcc": WCCStream,
    "sssp": SSSPStream,
}

__all__ = [
    "MutationBatch",
    "ApplyStats",
    "DeltaGraph",
    "EpochEngine",
    "EpochResult",
    "RefreshPlan",
    "StreamAlgorithm",
    "PageRankStream",
    "PageRankIncrementalBulk",
    "PageRankSchedule",
    "build_pagerank_schedule",
    "WCCStream",
    "WCCIncrementalBulk",
    "SSSPStream",
    "SSSPIncrementalBulk",
    "synthesize_batch",
    "synthesize_stream",
    "STREAM_ALGORITHMS",
]
