"""Small NumPy utilities shared across the package."""

from __future__ import annotations

import numpy as np

__all__ = ["expand_ranges", "group_starts"]


def expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[arange(s, s+c) for s, c in zip(starts, counts)]``
    without a Python loop.

    This is the standard trick for gathering the CSR edge slices of a whole
    frontier at once: ``expand_ranges(indptr[f], indptr[f+1]-indptr[f])``
    yields the flat edge indices of every vertex in ``f``.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    nonzero = counts > 0
    starts, counts = starts[nonzero], counts[nonzero]
    if starts.size == 0:
        return np.empty(0, dtype=np.int64)
    total = int(counts.sum())
    deltas = np.ones(total, dtype=np.int64)
    deltas[0] = starts[0]
    # at each range boundary, jump from the previous range's end to the
    # next range's start
    boundaries = np.cumsum(counts[:-1])
    deltas[boundaries] = starts[1:] - (starts[:-1] + counts[:-1]) + 1
    return np.cumsum(deltas)


def group_starts(sorted_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """For a sorted key array, return (unique keys, start index of each
    group) — the inputs ``ufunc.reduceat`` wants."""
    if sorted_keys.size == 0:
        return sorted_keys[:0], np.empty(0, dtype=np.int64)
    boundary = np.empty(sorted_keys.size, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    return sorted_keys[starts], starts
