"""Command-line interface: run any library algorithm on a dataset.

Examples::

    python -m repro run pagerank --dataset wikipedia --variant scatter
    python -m repro run pagerank --dataset bulk-100k --variant scatter --mode bulk
    python -m repro run sv --dataset twitter --variant both --workers 16
    python -m repro run wcc --graph my_edges.txt --variant prop --partition metis
    python -m repro run wcc --dataset tree --checkpoint-every 2 --fail 1:3 \\
        --recovery confined
    python -m repro run wcc --dataset tree --executor process \\
        --checkpoint-every 2 --fail 1:3 --recovery confined
    python -m repro stream pagerank --dataset stream-road --updates u.txt \\
        --epoch-size 200 --refresh incremental --executor process
    python -m repro run wcc --dataset tree --executor process --workers 2 \\
        --trace run.trace.jsonl
    python -m repro report run.trace.jsonl --chrome run.chrome.json
    python -m repro run pagerank --dataset bulk-100k --variant scatter \\
        --executor process --workers 2 --metrics-port 9109 --live-name myrun
    python -m repro top myrun            # refreshing per-worker table
    curl http://127.0.0.1:9109/metrics   # Prometheus text format, mid-run
    python -m repro generate rmat big.csr --scale 19 --edge-factor 20
    python -m repro info big.csr           # store kind, sizes, footprint
    python -m repro run pagerank --graph big.csr --variant scatter \\
        --mode bulk --executor process --workers 4 --partition degree
    python -m repro datasets
    python -m repro tables 6
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.bench.datasets import DATASETS, EXTRA_DATASETS, load_dataset, table3_rows
from repro.bench.runner import CELLS
from repro.core.engine import ChannelEngine
from repro.graph.io import load_graph
from repro.graph.partition import (
    degree_range_partition,
    metis_like_partition,
    range_partition,
)

__all__ = ["main"]

#: algorithm -> its channel-system variants exposed on the CLI
VARIANTS = {
    "pagerank": {
        "basic": ("pr", "channel-basic"),
        "scatter": ("pr", "channel-scatter"),
        "mirror": ("pr", "channel-mirror"),
    },
    "pj": {"basic": ("pj", "channel-basic"), "reqresp": ("pj", "channel-reqresp")},
    "wcc": {"basic": ("wcc", "channel-basic"), "prop": ("wcc", "channel-prop")},
    "sv": {
        "basic": ("sv", "channel-basic"),
        "reqresp": ("sv", "channel-reqresp"),
        "scatter": ("sv", "channel-scatter"),
        "both": ("sv", "channel-both"),
    },
    "scc": {"basic": ("scc", "channel-basic"), "prop": ("scc", "channel-prop")},
    "msf": {"basic": ("msf", "channel-basic")},
    "sssp": {"basic": ("sssp", "channel-basic"), "prop": ("sssp", "channel-prop")},
    "bfs": {"basic": ("bfs", "channel-basic")},
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="channel-based vertex-centric graph processing"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one algorithm and print metrics")
    run.add_argument("algorithm", choices=sorted(VARIANTS))
    src = run.add_mutually_exclusive_group(required=True)
    src.add_argument(
        "--dataset",
        choices=sorted(DATASETS) + sorted(EXTRA_DATASETS),
        help="built-in dataset",
    )
    src.add_argument(
        "--graph",
        help="graph file or mmap store directory (edge list, .npz, or a "
        "directory written by `repro generate` / load_edgelist_chunked; "
        "stores are attached in place, nothing is loaded into RAM)",
    )
    run.add_argument("--variant", default="basic")
    run.add_argument(
        "--mode",
        choices=["scalar", "bulk"],
        default="scalar",
        help="compute path: per-vertex (scalar) or columnar (bulk)",
    )
    run.add_argument("--workers", type=int, default=8)
    run.add_argument(
        "--executor",
        choices=["sim", "process"],
        default="sim",
        help="execution backend: in-process simulation (sim) or one OS "
        "process per worker over shared memory (process); results and "
        "traffic totals are bit-identical, and checkpointing/failure "
        "injection work on both",
    )
    run.add_argument(
        "--transport",
        choices=["shm", "pipe"],
        default=None,
        help="process-executor frame data plane: shared-memory ring "
        "buffers (shm, the default) or OS pipes (pipe, the portable "
        "fallback); results are bit-identical either way",
    )
    run.add_argument(
        "--partition",
        choices=["hash", "range", "degree", "metis"],
        default="hash",
        help="vertex partitioner (see repro.graph.partition); `degree` "
        "balances contiguous ranges by arc count using only the O(V) "
        "indptr array — the right default for skewed on-disk graphs",
    )
    run.add_argument(
        "--partitioned",
        action="store_true",
        help="deprecated alias for --partition metis",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="K",
        help="take a fault-tolerance checkpoint every K supersteps",
    )
    run.add_argument(
        "--fail",
        action="append",
        default=[],
        metavar="W:S",
        help="kill worker W at the end of superstep S (repeatable)",
    )
    run.add_argument(
        "--recovery",
        choices=["rollback", "confined"],
        default="rollback",
        help="recovery mode used when --fail triggers",
    )
    run.add_argument(
        "--rebalance",
        choices=["off", "epoch", "superstep"],
        default="off",
        help="adaptive load rebalancing (ARCHITECTURE.md §13): "
        "`superstep` pauses at a barrier every --rebalance-every "
        "supersteps and migrates vertex ranges off straggling workers "
        "when the policy's estimated win clears its hysteresis gates "
        "(`epoch` only applies to `stream`); results stay bit-identical",
    )
    run.add_argument(
        "--rebalance-every",
        type=int,
        default=16,
        metavar="N",
        help="supersteps between rebalance checks (with --rebalance "
        "superstep)",
    )
    run.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a structured JSON-lines run trace (span events: run, "
        "superstep, per-worker phase, exchange round, checkpoint, "
        "failure, recovery, rebalance); inspect with `repro report FILE`",
    )
    run.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve live per-worker metrics at "
        "http://127.0.0.1:PORT/metrics (Prometheus text format) while "
        "the run is in flight; 0 picks a free port",
    )
    run.add_argument(
        "--live-name",
        default=None,
        metavar="NAME",
        help="publish live metrics into a shared-memory segment with "
        "this name so `repro top NAME` can watch the run (implied "
        "random name when only --metrics-port is given)",
    )
    run.add_argument("--json", action="store_true", help="machine-readable output")

    stream = sub.add_parser(
        "stream",
        help="apply an update stream epoch by epoch, refreshing results",
    )
    stream.add_argument("algorithm", choices=["pagerank", "wcc", "sssp"])
    ssrc = stream.add_mutually_exclusive_group(required=True)
    ssrc.add_argument(
        "--dataset",
        choices=sorted(DATASETS) + sorted(EXTRA_DATASETS),
        help="built-in starting graph",
    )
    ssrc.add_argument(
        "--graph",
        help="starting graph: edge-list file, .npz, or mmap store "
        "directory (the delta overlay composes over any store)",
    )
    stream.add_argument(
        "--updates",
        required=True,
        help="update-stream file (ts op src dst [weight]; .gz ok)",
    )
    stream.add_argument(
        "--epoch-size",
        type=int,
        default=None,
        metavar="N",
        help="re-chunk the stream into batches of N mutations "
        "(default: group by timestamp)",
    )
    stream.add_argument(
        "--refresh",
        choices=["incremental", "full"],
        default="incremental",
        help="per-epoch refresh policy",
    )
    stream.add_argument("--workers", type=int, default=8)
    stream.add_argument(
        "--executor",
        choices=["sim", "process"],
        default="sim",
        help="execution backend for every epoch's refresh run; process "
        "epochs share one persistent worker pool (processes spawn once, "
        "then receive each epoch's graph/program as control messages)",
    )
    stream.add_argument(
        "--transport",
        choices=["shm", "pipe"],
        default=None,
        help="process-executor frame data plane (see `run --transport`)",
    )
    stream.add_argument(
        "--iterations", type=int, default=10, help="PageRank iterations"
    )
    stream.add_argument("--source", type=int, default=0, help="SSSP source")
    stream.add_argument(
        "--compact-threshold",
        type=float,
        default=0.25,
        help="overlay/base ratio that triggers delta-graph compaction",
    )
    stream.add_argument(
        "--rebalance",
        choices=["off", "epoch", "superstep"],
        default="off",
        help="adaptive load rebalancing: `epoch` re-partitions between "
        "epochs from the previous epoch's phase times; `superstep` "
        "migrates live state at superstep barriers inside each epoch; "
        "the improved partition carries forward either way",
    )
    stream.add_argument(
        "--rebalance-every",
        type=int,
        default=16,
        metavar="N",
        help="supersteps between rebalance checks (with --rebalance "
        "superstep)",
    )
    stream.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a structured JSON-lines trace (stream > epoch > run "
        "span hierarchy); inspect with `repro report FILE`",
    )
    stream.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve live per-worker metrics over HTTP while epochs run "
        "(see `run --metrics-port`); the segment rolls over per epoch",
    )
    stream.add_argument(
        "--live-name",
        default=None,
        metavar="NAME",
        help="named live-metrics segment for `repro top NAME`",
    )
    stream.add_argument("--json", action="store_true", help="one JSON row per epoch")

    report = sub.add_parser(
        "report",
        help="analyze a --trace file: phase breakdown, stragglers, anomalies",
    )
    report.add_argument("trace", help="JSON-lines trace written by --trace")
    report.add_argument(
        "--chrome",
        metavar="FILE",
        default=None,
        help="also export a chrome://tracing / Perfetto timeline JSON",
    )
    report.add_argument(
        "--straggler-threshold",
        type=float,
        default=1.5,
        help="per-worker skew score at which a worker is flagged as a "
        "straggler (1.0 = perfectly balanced; default 1.5)",
    )
    report.add_argument(
        "--z-threshold",
        type=float,
        default=3.0,
        help="EWMA z-score above which a superstep is flagged anomalous",
    )
    report.add_argument("--json", action="store_true", help="machine-readable output")

    top = sub.add_parser(
        "top",
        help="attach to a run's live-metrics segment and render a "
        "refreshing per-worker table",
    )
    top.add_argument(
        "segment",
        help="live segment name (printed by runs started with "
        "--metrics-port / --live-name)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="render one snapshot and exit (rates are run-lifetime "
        "averages instead of refresh deltas)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="refresh period in loop mode (exit with ctrl-c)",
    )

    info = sub.add_parser(
        "info",
        help="inspect a graph: store kind, sizes, dtypes, footprint",
    )
    info.add_argument(
        "graph",
        help="built-in dataset name, mmap store directory, .npz, or "
        "edge-list file",
    )
    info.add_argument("--json", action="store_true", help="machine-readable output")

    gen = sub.add_parser(
        "generate",
        help="write a synthetic graph straight to an on-disk mmap store "
        "(chunked; peak memory stays O(V), whatever the edge count)",
    )
    gen.add_argument("kind", choices=["rmat", "erdos-renyi"])
    gen.add_argument("out", help="store directory to create")
    gen.add_argument(
        "--scale", type=int, default=20, help="rmat: 2**scale vertices"
    )
    gen.add_argument(
        "--edge-factor", type=int, default=16, help="rmat: arcs per vertex"
    )
    gen.add_argument(
        "--vertices", type=int, default=1 << 20, help="erdos-renyi: vertex count"
    )
    gen.add_argument(
        "--avg-degree", type=float, default=16.0, help="erdos-renyi: arcs per vertex"
    )
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--undirected", action="store_true")
    gen.add_argument(
        "--weighted", action="store_true", help="rmat only: uniform [1,100) weights"
    )
    gen.add_argument(
        "--index-dtype",
        choices=["int64", "uint32"],
        default="int64",
        help="on-disk dtype for indices.npy; uint32 halves the dominant "
        "array for graphs under 2**32 vertices (readers widen to int64 "
        "on attach)",
    )
    gen.add_argument(
        "--chunk-edges",
        type=int,
        default=1 << 20,
        metavar="N",
        help="arcs generated per chunk; with --seed it identifies the "
        "exact output graph",
    )

    sub.add_parser("datasets", help="print the Table III dataset inventory")

    tables = sub.add_parser("tables", help="regenerate the paper's tables")
    tables.add_argument("which", nargs="*", help="table numbers (default: all)")
    return parser


def _start_live(args):
    """Bring the live telemetry plane up for a `run`/`stream` invocation.

    Returns ``(live, server, error_code)`` — ``error_code`` is not None
    when setup failed and the command should exit with it.  The "serving"
    line goes to stderr *before* the run starts (flushed), so wrappers
    can parse the URL/segment and start scraping mid-run.
    """
    if args.metrics_port is None and args.live_name is None:
        return None, None, None
    from repro.obs import LiveMetrics, MetricsHTTPServer

    try:
        live = LiveMetrics.create(args.workers, name=args.live_name)
    except FileExistsError:
        print(
            f"live segment {args.live_name!r} already exists "
            "(another run is using it, or a crashed run leaked it)",
            file=sys.stderr,
        )
        return None, None, 2
    server = None
    if args.metrics_port is not None:
        server = MetricsHTTPServer(
            live, port=args.metrics_port, labels={"workload": args.algorithm}
        )
        try:
            port = server.start()
        except (OSError, OverflowError) as exc:  # in use, or not a real port
            live.close(unlink=True)
            print(f"cannot serve --metrics-port: {exc}", file=sys.stderr)
            return None, None, 2
        print(
            f"serving live metrics at http://127.0.0.1:{port}/metrics "
            f"(segment {live.name}; watch with `repro top {live.name}`)",
            file=sys.stderr,
            flush=True,
        )
    else:
        print(
            f"publishing live metrics to segment {live.name} "
            f"(watch with `repro top {live.name}`)",
            file=sys.stderr,
            flush=True,
        )
    return live, server, None


def _cmd_run(args) -> int:
    variants = VARIANTS[args.algorithm]
    if args.variant not in variants:
        print(
            f"unknown variant {args.variant!r} for {args.algorithm}; "
            f"choose from {sorted(variants)}",
            file=sys.stderr,
        )
        return 2
    algo, program = variants[args.variant]
    if args.mode == "bulk":
        if (algo, program + "-bulk") not in CELLS:
            print(
                f"{args.algorithm} variant {args.variant!r} has no bulk port",
                file=sys.stderr,
            )
            return 2
        program += "-bulk"
    runner = CELLS[(algo, program)]

    if args.dataset:
        graph = load_dataset(args.dataset)
    else:
        try:
            graph = load_graph(args.graph)
        except (OSError, ValueError) as exc:
            print(f"cannot open {args.graph!r}: {exc}", file=sys.stderr)
            return 2
    if args.partitioned and args.partition not in ("hash", "metis"):
        print(
            "--partitioned (deprecated) conflicts with --partition; "
            "drop --partitioned and keep --partition",
            file=sys.stderr,
        )
        return 2
    partition = "metis" if args.partitioned else args.partition
    # backend/fault-tolerance option validation lives in the engine, the
    # single source of truth — the CLI only translates the ValueError
    if args.rebalance == "epoch":
        print(
            "--rebalance epoch needs epoch boundaries; use `repro stream` "
            "(or --rebalance superstep here)",
            file=sys.stderr,
        )
        return 2
    try:
        schedule = ChannelEngine.validate_options(
            executor=args.executor,
            checkpoint_every=args.checkpoint_every,
            failures=args.fail or None,
            recovery=args.recovery,
            num_workers=args.workers,
            transport=args.transport,
            rebalance=args.rebalance,
            rebalance_every=args.rebalance_every,
        )
    except ValueError as exc:
        print(f"bad run options: {exc}", file=sys.stderr)
        return 2
    kwargs = {"num_workers": args.workers, "executor": args.executor}
    if args.rebalance != "off":
        kwargs["rebalance"] = args.rebalance
        kwargs["rebalance_every"] = args.rebalance_every
    if args.transport is not None:
        kwargs["transport"] = args.transport
    if partition == "metis":
        kwargs["partition"] = metis_like_partition(graph, args.workers, seed=0)
    elif partition == "range":
        kwargs["partition"] = range_partition(graph.num_vertices, args.workers)
    elif partition == "degree":
        kwargs["partition"] = degree_range_partition(graph, args.workers)
    if args.checkpoint_every is not None:
        kwargs["checkpoint_every"] = args.checkpoint_every
    if schedule is not None:
        kwargs["failures"] = schedule
        kwargs["recovery"] = args.recovery

    recorder = None
    if args.trace is not None:
        from repro.obs import TraceRecorder

        recorder = TraceRecorder(args.trace)
        kwargs["trace"] = recorder
    live, server, code = _start_live(args)
    if code is not None:
        if recorder is not None:
            recorder.close()
        return code
    if live is not None:
        kwargs["live"] = live
    try:
        out = runner(graph, **kwargs)
    finally:
        if server is not None:
            server.stop()
        if live is not None:
            live.close(unlink=True)
        if recorder is not None:
            recorder.close()
    result = out[-1]
    m = result.metrics
    row = {
        "algorithm": args.algorithm,
        "variant": args.variant,
        "graph": args.dataset or args.graph,
        "vertices": graph.num_vertices,
        "edges": graph.num_input_edges,
        "workers": args.workers,
        "partition": partition,
        "executor": args.executor,
        **m.summary(),
    }
    if args.executor == "process":
        row["transport"] = args.transport if args.transport is not None else "shm"
    if result.live_alerts is not None:
        row["live_alerts"] = len(result.live_alerts)
    if args.json:
        print(json.dumps(row))
    else:
        for k, v in row.items():
            if isinstance(v, float):
                v = round(v, 6)
            print(f"{k:16s} {v}")
        if args.trace is not None:
            print(f"trace written to {args.trace} (inspect with `repro report`)")
    return 0


def _cmd_stream(args) -> int:
    from repro.graph.io import load_update_stream
    from repro.streaming import STREAM_ALGORITHMS, EpochEngine

    if args.epoch_size is not None and args.epoch_size < 1:
        print("--epoch-size must be >= 1", file=sys.stderr)
        return 2
    if args.compact_threshold <= 0:
        print("--compact-threshold must be positive", file=sys.stderr)
        return 2
    if args.dataset:
        graph = load_dataset(args.dataset)
    else:
        try:
            graph = load_graph(args.graph)
        except (OSError, ValueError) as exc:
            print(f"cannot open {args.graph!r}: {exc}", file=sys.stderr)
            return 2
    try:
        batches = load_update_stream(args.updates, epoch_size=args.epoch_size)
    except (OSError, ValueError) as exc:
        print(f"bad --updates stream: {exc}", file=sys.stderr)
        return 2
    if not batches:
        print("update stream is empty", file=sys.stderr)
        return 2

    params = {}
    if args.algorithm == "pagerank":
        params["iterations"] = args.iterations
    elif args.algorithm == "sssp":
        params["source"] = args.source
    algo = STREAM_ALGORITHMS[args.algorithm](**params)
    recorder = None
    if args.trace is not None:
        from repro.obs import TraceRecorder

        recorder = TraceRecorder(args.trace)
    live, server, code = _start_live(args)
    if code is not None:
        if recorder is not None:
            recorder.close()
        return code
    try:
        engine = EpochEngine(
            graph,
            algo,
            num_workers=args.workers,
            refresh=args.refresh,
            compact_threshold=args.compact_threshold,
            executor=args.executor,
            transport=args.transport,
            trace=recorder,
            live=live,
            rebalance=args.rebalance,
            rebalance_every=args.rebalance_every,
        )
    except ValueError as exc:
        if server is not None:
            server.stop()
        if live is not None:
            live.close(unlink=True)
        if recorder is not None:
            recorder.close()
        print(f"bad stream options: {exc}", file=sys.stderr)
        return 2
    try:
        engine.bootstrap()
        epochs = engine.run(batches)
    except ValueError as exc:
        print(f"stream application failed: {exc}", file=sys.stderr)
        return 1
    finally:
        engine.close()
        if server is not None:
            server.stop()
        if live is not None:
            live.close(unlink=True)
        if recorder is not None:
            recorder.close()

    rows = [engine.history[0].summary()] + [e.summary() for e in epochs]
    if args.json:
        for row in rows:
            print(json.dumps(row))
    else:
        for row in rows:
            print(" ".join(f"{k}={round(v, 6) if isinstance(v, float) else v}"
                           for k, v in row.items()))
    return 0


def _cmd_report(args) -> int:
    from repro.obs import TraceReport, export_chrome_trace, load_trace

    try:
        events = load_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    if not events:
        print("trace is empty", file=sys.stderr)
        return 2
    report = TraceReport(events)
    if args.chrome is not None:
        export_chrome_trace(events, args.chrome)
    if args.json:
        print(
            json.dumps(
                report.as_dict(
                    straggler_threshold=args.straggler_threshold,
                    z_threshold=args.z_threshold,
                )
            )
        )
    else:
        print(
            report.render(
                straggler_threshold=args.straggler_threshold,
                z_threshold=args.z_threshold,
            )
        )
        if args.chrome is not None:
            print(f"chrome trace written to {args.chrome} (load in chrome://tracing)")
    # a structurally broken trace (unclosed spans, bad nesting) is an
    # instrumentation bug — exit non-zero so CI trace smokes catch it
    return 1 if report.problems else 0


def _cmd_top(args) -> int:
    import time as _time

    from repro.obs import LiveMetrics, format_top

    try:
        live = LiveMetrics.attach(args.segment)
    except FileNotFoundError:
        print(
            f"no live-metrics segment named {args.segment!r} — is the run "
            "still going, and was it started with --metrics-port or "
            "--live-name?",
            file=sys.stderr,
        )
        return 2
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        if args.once:
            print(format_top(live))
            return 0
        prev = prev_t = None
        while True:
            rows = live.snapshot()
            now = _time.monotonic()
            dt = None if prev_t is None else now - prev_t
            # clear + home, then one table per refresh (plain ANSI; the
            # run owns stdout semantics, repro top owns a whole terminal)
            sys.stdout.write("\x1b[2J\x1b[H")
            print(format_top(live, rows=rows, prev=prev, dt=dt), flush=True)
            prev, prev_t = rows, now
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        live.close()


def _graph_info(name: str, graph) -> dict:
    """One ``repro info`` row: where the graph lives and what it costs."""
    store = graph.store
    fp = store.footprint()
    row = {
        "graph": name,
        "store": store.kind,
        "vertices": graph.num_vertices,
        "edges": graph.num_input_edges,
        "arcs": graph.num_edges,
        "directed": graph.directed,
        "weighted": graph.weighted,
        "avg_degree": round(graph.avg_degree, 3),
        "indptr_dtype": str(graph.indptr.dtype),
        "indices_dtype": str(graph.indices.dtype),
        "resident_mb": round(fp["resident_bytes"] / 1e6, 3),
        "on_disk_mb": round(fp["on_disk_bytes"] / 1e6, 3),
    }
    if store.kind == "mmap":
        row["path"] = str(store.path)
    return row


def _cmd_info(args) -> int:
    from repro.obs import format_table

    if args.graph in DATASETS or args.graph in EXTRA_DATASETS:
        graph = load_dataset(args.graph)
    else:
        try:
            graph = load_graph(args.graph)
        except (OSError, ValueError) as exc:
            print(f"cannot open {args.graph!r}: {exc}", file=sys.stderr)
            return 2
    row = _graph_info(args.graph, graph)
    if args.json:
        print(json.dumps(row))
    else:
        # one property per line reads better than one very wide table row
        print(format_table([{"property": k, "value": v} for k, v in row.items()]))
    return 0


def _cmd_generate(args) -> int:
    from repro.graph.generators import erdos_renyi_to_disk, rmat_to_disk
    from repro.obs import format_table

    if args.chunk_edges < 1:
        print("--chunk-edges must be >= 1", file=sys.stderr)
        return 2
    if args.kind == "rmat":
        graph = rmat_to_disk(
            args.out,
            scale=args.scale,
            edge_factor=args.edge_factor,
            seed=args.seed,
            directed=not args.undirected,
            weighted=args.weighted,
            chunk_edges=args.chunk_edges,
            index_dtype=args.index_dtype,
        )
    else:
        if args.weighted:
            print("--weighted is rmat-only", file=sys.stderr)
            return 2
        graph = erdos_renyi_to_disk(
            args.out,
            args.vertices,
            args.avg_degree,
            seed=args.seed,
            directed=not args.undirected,
            chunk_edges=args.chunk_edges,
            index_dtype=args.index_dtype,
        )
    row = _graph_info(args.out, graph)
    print(format_table([{"property": k, "value": v} for k, v in row.items()]))
    return 0


def _cmd_datasets() -> int:
    rows = table3_rows()
    cols = list(rows[0])
    print("  ".join(c.ljust(12) for c in cols))
    for r in rows:
        print("  ".join(str(r[c]).ljust(12) for c in cols))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "stream":
        return _cmd_stream(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "info":
        return _cmd_info(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "tables":
        from repro.bench.tables import main as tables_main

        tables_main(args.which)
        return 0
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
