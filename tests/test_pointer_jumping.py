"""Pointer jumping: all variants find the roots; reqresp saves bytes."""

import numpy as np
import pytest

from repro.algorithms.pointer_jumping import run_pointer_jumping
from repro.pregel_algorithms.pointer_jumping import run_pointer_jumping_pregel
from repro.graph import chain, random_tree
from repro.graph.graph import Graph


def forest_roots(graph):
    """Oracle: follow parent pointers to the root."""
    out = np.zeros(graph.num_vertices, dtype=np.int64)
    for v in range(graph.num_vertices):
        u = v
        while graph.out_degree(u):
            u = int(graph.neighbors(u)[0])
        out[v] = u
    return out


@pytest.fixture(scope="module")
def tree():
    return random_tree(300, seed=4)


@pytest.fixture(scope="module")
def chain_graph():
    return chain(128)


ALL_RUNNERS = [
    ("channel-basic", lambda g, **kw: run_pointer_jumping(g, variant="basic", **kw)),
    ("channel-reqresp", lambda g, **kw: run_pointer_jumping(g, variant="reqresp", **kw)),
    ("pregel-basic", lambda g, **kw: run_pointer_jumping_pregel(g, mode="basic", **kw)),
    ("pregel-reqresp", lambda g, **kw: run_pointer_jumping_pregel(g, mode="reqresp", **kw)),
]


@pytest.mark.parametrize("name,runner", ALL_RUNNERS, ids=[r[0] for r in ALL_RUNNERS])
class TestCorrectness:
    def test_tree(self, tree, name, runner):
        roots, _ = runner(tree, num_workers=4)
        np.testing.assert_array_equal(roots, forest_roots(tree))

    def test_chain(self, chain_graph, name, runner):
        roots, _ = runner(chain_graph, num_workers=4)
        assert np.all(roots == 0)

    def test_forest_of_two_trees(self, name, runner):
        # two chains: 0<-1<-2 and 3<-4<-5
        g = Graph.from_edges(6, [(1, 0), (2, 1), (4, 3), (5, 4)], directed=True)
        roots, _ = runner(g, num_workers=3)
        assert roots.tolist() == [0, 0, 0, 3, 3, 3]

    def test_single_root(self, name, runner):
        g = Graph.from_edges(1, [], directed=True)
        roots, _ = runner(g, num_workers=1)
        assert roots.tolist() == [0]


class TestConvergenceAndTraffic:
    def test_reqresp_halves_supersteps(self, chain_graph):
        _, rb = run_pointer_jumping(chain_graph, variant="basic", num_workers=4)
        _, rr = run_pointer_jumping(chain_graph, variant="reqresp", num_workers=4)
        assert rr.supersteps < rb.supersteps
        # one jump per superstep vs one jump per two supersteps
        assert rr.supersteps <= rb.supersteps // 2 + 2

    def test_logarithmic_supersteps_on_chain(self, chain_graph):
        _, rr = run_pointer_jumping(chain_graph, variant="reqresp", num_workers=4)
        # depth 127 -> ~log2 jumps + setup
        assert rr.supersteps <= 12

    def test_reqresp_reduces_bytes_vs_basic(self, tree):
        part = np.arange(tree.num_vertices) % 4
        _, rb = run_pointer_jumping(tree, variant="basic", num_workers=4, partition=part)
        _, rr = run_pointer_jumping(tree, variant="reqresp", num_workers=4, partition=part)
        assert rr.metrics.total_net_bytes < rb.metrics.total_net_bytes

    def test_channel_reqresp_beats_pregel_reqresp_bytes(self, tree):
        """Positional responses vs (id, value) echoes: constant savings."""
        part = np.arange(tree.num_vertices) % 4
        _, rc = run_pointer_jumping(tree, variant="reqresp", num_workers=4, partition=part)
        _, rp = run_pointer_jumping_pregel(tree, mode="reqresp", num_workers=4, partition=part)
        assert rc.metrics.total_net_bytes < rp.metrics.total_net_bytes

    def test_basic_bytes_equal_between_systems(self, tree):
        """Table IV PJ row: identical bytes for the two basic versions."""
        part = np.arange(tree.num_vertices) % 4
        _, rc = run_pointer_jumping(tree, variant="basic", num_workers=4, partition=part)
        _, rp = run_pointer_jumping_pregel(tree, mode="basic", num_workers=4, partition=part)
        assert rc.metrics.total_messages == rp.metrics.total_messages
