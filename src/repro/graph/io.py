"""Graph input/output: edge-list text and compact NPZ binary formats."""

from __future__ import annotations

import os

import numpy as np

from repro.graph.graph import Graph

__all__ = ["save_edgelist", "load_edgelist", "save_npz", "load_npz"]


def save_edgelist(graph: Graph, path: str | os.PathLike) -> None:
    """Write one arc per line: ``src dst [weight]``.

    Undirected graphs are written with each edge once (the smaller endpoint
    first), mirroring the common SNAP/KONECT convention.
    """
    src, dst = graph.edge_array()
    w = graph.weights
    if not graph.directed:
        keep = src <= dst
        src, dst = src[keep], dst[keep]
        if w is not None:
            w = w[keep]
    with open(path, "w") as f:
        f.write(f"# vertices {graph.num_vertices} directed {int(graph.directed)}\n")
        if w is None:
            for s, d in zip(src.tolist(), dst.tolist()):
                f.write(f"{s} {d}\n")
        else:
            for s, d, x in zip(src.tolist(), dst.tolist(), w.tolist()):
                f.write(f"{s} {d} {x}\n")


def load_edgelist(path: str | os.PathLike) -> Graph:
    """Read the format written by :func:`save_edgelist`.

    Files without the header comment are accepted; vertex count defaults to
    ``max id + 1`` and the graph is treated as directed.
    """
    num_vertices = -1
    directed = True
    src: list[int] = []
    dst: list[int] = []
    weights: list[float] = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if "vertices" in parts:
                    num_vertices = int(parts[parts.index("vertices") + 1])
                if "directed" in parts:
                    directed = bool(int(parts[parts.index("directed") + 1]))
                continue
            parts = line.split()
            src.append(int(parts[0]))
            dst.append(int(parts[1]))
            if len(parts) > 2:
                weights.append(float(parts[2]))
    s = np.asarray(src, dtype=np.int64)
    d = np.asarray(dst, dtype=np.int64)
    if num_vertices < 0:
        num_vertices = int(max(s.max(initial=-1), d.max(initial=-1)) + 1)
    w = np.asarray(weights, dtype=np.float64) if weights else None
    if w is not None and w.size != s.size:
        raise ValueError("some edges have weights and some do not")
    return Graph(num_vertices, s, d, weights=w, directed=directed)


def save_npz(graph: Graph, path: str | os.PathLike) -> None:
    """Compact binary save (CSR arrays directly)."""
    payload = {
        "num_vertices": np.int64(graph.num_vertices),
        "directed": np.int64(graph.directed),
        "indptr": graph.indptr,
        "indices": graph.indices,
    }
    if graph.weights is not None:
        payload["weights"] = graph.weights
    np.savez_compressed(path, **payload)


def load_npz(path: str | os.PathLike) -> Graph:
    with np.load(path) as data:
        n = int(data["num_vertices"])
        directed = bool(data["directed"])
        indptr = data["indptr"]
        indices = data["indices"]
        weights = data["weights"] if "weights" in data else None
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    # CSR already contains both arc directions for undirected graphs, so
    # rebuild as a directed arc list and restore the flag afterwards.
    g = Graph(n, src, indices, weights=weights, directed=True)
    g.directed = directed
    return g
