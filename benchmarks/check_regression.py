"""CI regression gate for process-backend benchmark artifacts.

Compares a freshly produced ``BENCH_parallel*.json`` against the
committed baseline and fails (exit 1) on anything that should never
regress:

* **Parity is environment-independent and always enforced.**  Every
  fresh row must report ``parity_shm`` and ``parity_pipe`` true (and the
  amortization rows ``identical``), and on the row intersection with the
  baseline — matched by (workload, workers) — the work done must be
  *exactly* the baseline's: same ``supersteps``, same ``net_mb``.  A CI
  smoke that runs a subset (say ``--workers 2`` against a baseline with
  ``[2, 8]``) checks just the rows it has.
* **Wall-time is environment-dependent and gated on ``speedup_valid``.**
  Per-transport wall-clock ratios (fresh / baseline) fail above
  ``--tolerance`` only when *both* artifacts were produced with
  ``speedup_valid: true`` — a 1-CPU baseline or a 1-CPU smoke measures
  protocol overhead, and comparing those against multi-core numbers
  would gate merges on noise.
* **The transport's reason to exist.**  When the fresh artifact has
  ``speedup_valid: true``, at least one bulk workload at 2 workers must
  show ``speedup_shm_vs_pipe >= --min-shm-speedup`` (default 1.5) —
  the ring transport has to actually beat the pipe hop on real cores.
* A fresh artifact flagged ``dirty_tree`` fails outright: its numbers
  are not traceable to any commit.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py FRESH.json \\
        [--baseline BENCH_parallel.json] [--tolerance 1.5] [--min-shm-speedup 1.5]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["check", "main"]

REPO_ROOT = Path(__file__).resolve().parent.parent


def _rows_by_key(payload: dict) -> dict[tuple, dict]:
    return {(r["workload"], r["workers"]): r for r in payload["rows"]}


def check(
    fresh: dict,
    baseline: dict,
    tolerance: float = 1.5,
    min_shm_speedup: float = 1.5,
) -> list[str]:
    """Return a list of failure messages (empty = gate passes)."""
    failures: list[str] = []

    if fresh.get("dirty_tree"):
        failures.append(
            f"fresh artifact was produced from a dirty tree ({fresh.get('git')}) "
            "— numbers are untraceable; rerun from a clean checkout"
        )

    # -- parity: absolute, environment-independent -------------------------
    for row in fresh["rows"]:
        cell = f"{row['workload']}@{row['workers']}"
        for t in ("pipe", "shm"):
            if not row.get(f"parity_{t}", False):
                failures.append(f"{cell}: transport {t!r} broke sim parity")
    for row in fresh.get("amortization", []):
        if not row.get("identical", False):
            failures.append(
                f"amortization/{row.get('mode')}: per-epoch data diverged"
            )

    # -- work parity vs baseline on the row intersection --------------------
    comparable = fresh.get("dataset") == baseline.get("dataset") and fresh.get(
        "seed"
    ) == baseline.get("seed")
    if not comparable:
        failures.append(
            f"artifacts are not comparable: fresh is "
            f"(dataset={fresh.get('dataset')!r}, seed={fresh.get('seed')}), "
            f"baseline is (dataset={baseline.get('dataset')!r}, "
            f"seed={baseline.get('seed')})"
        )
    base_rows = _rows_by_key(baseline)
    shared = [
        (key, row)
        for key, row in _rows_by_key(fresh).items()
        if key in base_rows
    ]
    if not shared and comparable:
        failures.append("no (workload, workers) rows in common with the baseline")
    for key, row in shared if comparable else []:
        cell = f"{key[0]}@{key[1]}"
        base = base_rows[key]
        for field in ("supersteps", "net_mb"):
            if row.get(field) != base.get(field):
                failures.append(
                    f"{cell}: {field} changed "
                    f"(baseline {base.get(field)}, fresh {row.get(field)}) — "
                    "the backend is doing different work, not running slower"
                )

    # -- wall time: only when both sides measured real parallelism ----------
    walls_meaningful = fresh.get("speedup_valid") and baseline.get("speedup_valid")
    for key, row in shared if (comparable and walls_meaningful) else []:
        cell = f"{key[0]}@{key[1]}"
        base = base_rows[key]
        for field in ("pipe_wall_s", "shm_wall_s"):
            b, f = base.get(field), row.get(field)
            if not b or not f:
                continue
            ratio = f / b
            if ratio > tolerance:
                failures.append(
                    f"{cell}: {field} regressed {ratio:.2f}x "
                    f"(baseline {b}s, fresh {f}s, tolerance {tolerance}x)"
                )

    # -- shm must beat pipe somewhere real ----------------------------------
    if fresh.get("speedup_valid"):
        two_worker = [r for r in fresh["rows"] if r["workers"] == 2]
        best = max(
            (r.get("speedup_shm_vs_pipe", 0.0) for r in two_worker),
            default=0.0,
        )
        if two_worker and best < min_shm_speedup:
            failures.append(
                f"shm never beat pipe by {min_shm_speedup}x at 2 workers "
                f"(best speedup_shm_vs_pipe = {best}) — the ring transport "
                "is not earning its keep on this machine"
            )

    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", type=Path, help="just-produced artifact")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / "BENCH_parallel.json",
        help="committed artifact to compare against (default: repo root)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1.5,
        help="max allowed fresh/baseline wall-time ratio (default 1.5; "
        "only enforced when both artifacts have speedup_valid)",
    )
    parser.add_argument(
        "--min-shm-speedup",
        type=float,
        default=1.5,
        help="required speedup_shm_vs_pipe on >=1 workload at 2 workers "
        "when the fresh run had real cores (default 1.5)",
    )
    args = parser.parse_args(argv)

    fresh = json.loads(args.fresh.read_text())
    baseline = json.loads(args.baseline.read_text())
    failures = check(fresh, baseline, args.tolerance, args.min_shm_speedup)
    if failures:
        for msg in failures:
            print(f"REGRESSION: {msg}", file=sys.stderr)
        return 1
    walls = (
        "enforced"
        if fresh.get("speedup_valid") and baseline.get("speedup_valid")
        else "skipped (speedup_valid false on at least one side)"
    )
    print(
        f"regression gate passed: {len(fresh['rows'])} rows checked, "
        f"parity exact, wall-time {walls}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
