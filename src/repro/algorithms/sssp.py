"""Single-source shortest paths (weighted, non-negative).

Not part of the paper's tables but one of its motivating algorithms;
included as a library algorithm and example workload.

* ``SSSPBasic`` — Bellman-Ford-style relaxation over a
  ``CombinedMessage(MIN)`` channel, the classic Pregel SSSP.
* ``SSSPPropagation`` — the ``Propagation`` channel with
  ``edge_fn = dist + w``: the relaxation runs to fixpoint inside one
  superstep.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._common import gather
from repro.core import (
    ChannelEngine,
    CombinedMessage,
    MIN_F64,
    Propagation,
    Vertex,
    VertexProgram,
)
from repro.graph.graph import Graph

__all__ = ["SSSPBasic", "SSSPPropagation", "run_sssp", "make_sssp_program"]


def _weights(v: Vertex) -> np.ndarray:
    g = v._worker.graph
    if g.weighted:
        return v.edge_weights
    return np.ones(v.out_degree)


class SSSPBasic(VertexProgram):
    """Pregel-style SSSP: relax on message arrival."""

    source = 0

    def __init__(self, worker):
        super().__init__(worker)
        self.msg = CombinedMessage(worker, MIN_F64)
        self.dist = np.full(worker.num_local, np.inf)

    def _relax(self, v: Vertex, d: float) -> None:
        self.dist[v.local] = d
        send = self.msg.send_message
        for e, w in zip(v.edges, _weights(v)):
            send(int(e), d + float(w))

    def compute(self, v: Vertex) -> None:
        if self.step_num == 1:
            if v.id == self.source:
                self._relax(v, 0.0)
        else:
            m = float(self.msg.get_message(v))
            if m < self.dist[v.local]:
                self._relax(v, m)
        v.vote_to_halt()

    def finalize(self) -> dict:
        return {int(g): float(self.dist[i]) for i, g in enumerate(self.worker.local_ids)}


class SSSPPropagation(VertexProgram):
    """SSSP on the Propagation channel (weighted relaxation to fixpoint)."""

    source = 0

    def __init__(self, worker):
        super().__init__(worker)
        self.prop = Propagation(worker, MIN_F64, edge_fn=lambda w, d: w + d)
        self.dist = np.full(worker.num_local, np.inf)

    def compute(self, v: Vertex) -> None:
        if self.step_num == 1:
            self.prop.add_edges(v, v.edges, _weights(v))
            if v.id == self.source:
                self.prop.set_value(v, 0.0)
        else:
            self.dist[v.local] = self.prop.get_value(v)
            v.vote_to_halt()

    def finalize(self) -> dict:
        return {int(g): float(self.dist[i]) for i, g in enumerate(self.worker.local_ids)}


def make_sssp_program(variant: str, source: int):
    """A program class with the source baked in."""
    base = {"basic": SSSPBasic, "prop": SSSPPropagation}[variant]
    return type(base.__name__, (base,), {"source": source})


def run_sssp(graph: Graph, source: int = 0, variant: str = "basic", **engine_kwargs):
    """Run SSSP; returns ``(dists, EngineResult)`` (inf = unreachable)."""
    program = make_sssp_program(variant, source)
    result = ChannelEngine(graph, program, **engine_kwargs).run()
    return gather(result, graph.num_vertices, dtype=np.float64), result
