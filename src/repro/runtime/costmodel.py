"""Network cost model for the simulated cluster.

The paper's experiments ran on 8 EC2 ``m4.xlarge`` nodes with 750 Mbps
pairwise connectivity.  We reproduce the *relative* effects of that setup
with a simple but standard model: one buffer-exchange round costs a fixed
latency (global synchronization) plus the transfer time of the most loaded
worker.  Taking the max over workers — rather than the sum — is what makes
load imbalance visible: a worker that must answer requests for one
high-degree vertex pays for all of those bytes alone, exactly the effect
the request-respond optimization removes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NetworkModel", "DEFAULT_NETWORK"]


@dataclass(frozen=True)
class NetworkModel:
    """Parameters of the simulated interconnect.

    Attributes
    ----------
    latency:
        Per-exchange-round synchronization cost in seconds.  Every round of
        buffer exchange pays this once (it models the BSP barrier plus
        connection round trips).
    bandwidth:
        Per-worker link bandwidth in bytes/second.  The paper's 750 Mbps
        ~= 93.75 MB/s.
    per_message_overhead:
        Fixed per-message wire overhead in bytes (framing/headers).  Kept 0
        by default so that byte counts equal payload sizes, matching how the
        paper reports "message (GB)".
    """

    latency: float = 1e-3
    bandwidth: float = 93.75e6
    per_message_overhead: int = 0

    def exchange_time(
        self,
        send_bytes: np.ndarray,
        recv_bytes: np.ndarray,
        messages: int = 0,
    ) -> float:
        """Modeled wall time of one pairwise buffer-exchange round.

        ``send_bytes``/``recv_bytes`` are per-worker totals for the round.
        The round finishes when the busiest worker finishes, and a worker is
        busy for as long as it is either sending or receiving (full duplex).
        """
        if len(send_bytes) == 0:
            return self.latency
        wire = messages * self.per_message_overhead
        busiest = float(np.max(np.maximum(send_bytes, recv_bytes))) + wire
        return self.latency + busiest / self.bandwidth


#: Model mirroring the paper's cluster (750 Mbps, ~1 ms barrier).
DEFAULT_NETWORK = NetworkModel()
