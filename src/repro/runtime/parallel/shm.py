"""Read-only NumPy arrays over ``multiprocessing.shared_memory``.

The parent exports each array once (one copy into a fresh segment); every
worker process attaches by name and gets a read-only zero-copy view.  The
specs that travel to the children are plain ``(name, dtype, shape)``
tuples, so they cross the control pipes through the same tagged-binary
codec as everything else.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArrayExport", "attach_array"]


def _spec(name: str, arr: np.ndarray) -> dict:
    return {"name": name, "dtype": arr.dtype.str, "shape": list(arr.shape)}


class SharedArrayExport:
    """Parent-side owner of a set of shared-memory arrays.

    ``share()`` copies an array into a new segment and returns its spec;
    ``close()`` releases (and by default unlinks) every segment.  The
    parent must keep this object alive for as long as children are
    attached.
    """

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []

    def share(self, arr: np.ndarray) -> dict:
        arr = np.ascontiguousarray(arr)
        # zero-size segments are rejected by the OS; keep 1 byte and let
        # the spec's shape reconstruct the empty view
        seg = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
        self._segments.append(seg)
        if arr.nbytes:
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
            view[...] = arr
        return _spec(seg.name, arr)

    def close(self, unlink: bool = True) -> None:
        for seg in self._segments:
            try:
                seg.close()
                if unlink:
                    seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []

    def __enter__(self) -> "SharedArrayExport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def attach_array(
    spec: dict, unregister: bool = False
) -> tuple[np.ndarray, shared_memory.SharedMemory]:
    """Map a shared array read-only in this process.

    Returns the view *and* the segment handle; the caller must keep the
    handle alive while the view is in use and ``close()`` it afterwards
    (never ``unlink()`` — the parent owns the segment).

    ``unregister`` works around bpo-39959 for **spawned** children: their
    private resource tracker would treat the attached segment as leaked
    on exit and unlink it under the parent.  Forked children share the
    parent's tracker, where attaching is an idempotent re-register —
    unregistering there would instead erase the parent's claim, so the
    caller must pass ``unregister`` matching the start method in use.
    """
    seg = shared_memory.SharedMemory(name=spec["name"])
    if unregister:
        try:  # pragma: no cover - spawn-only path
            from multiprocessing import resource_tracker

            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:
            pass
    shape = tuple(spec["shape"])
    arr = np.ndarray(shape, dtype=np.dtype(spec["dtype"]), buffer=seg.buf)
    arr.flags.writeable = False
    return arr, seg
