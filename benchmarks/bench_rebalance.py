"""Adaptive rebalancing benchmark (BENCH_rebalance.json).

Plants a pathologically skewed partition on an RMAT graph — contiguous
equal-vertex ranges, so worker 0 inherits the hubs (RMAT concentrates
degree on low vertex ids) — and measures what the straggler-driven
migration of ARCHITECTURE.md §13 does about it:

* **time-to-rebalance** — the superstep (``--rebalance superstep``) or
  epoch (``--rebalance epoch`` over a synthesized update stream) at
  which the first migration fires; the epoch trigger must fire within
  the first two epochs after bootstrap.
* **post-migration improvement** — the policy's cost-model load ratio
  (max-over-workers arc-weighted load before / after, ``gain_ratio``)
  must clear 1.3x; per-run wall seconds ride along and are only gated
  when ``speedup_valid`` (2+ CPUs on both sides).
* **correctness** — every rebalanced run must reproduce the
  rebalance-off run's ``result.data`` bit for bit, and a *balanced*
  hash partition must produce zero migrations (``no_false_fire``, the
  hysteresis claim).

Run it directly::

    PYTHONPATH=src python benchmarks/bench_rebalance.py                # scale 10, 4 workers
    PYTHONPATH=src python benchmarks/bench_rebalance.py --smoke --out BENCH_rebalance_smoke.json
"""

from __future__ import annotations

import argparse
import io
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from _provenance import write_artifact
from repro.algorithms.pagerank import run_pagerank
from repro.algorithms.wcc import run_wcc
from repro.bench.tables import render_rows
from repro.graph import rmat
from repro.obs import TraceRecorder
from repro.runtime.rebalance import RebalancePolicy
from repro.streaming import WCCStream, EpochEngine, synthesize_stream

WORKLOADS = {
    "pr-scatter-bulk": lambda g, **kw: run_pagerank(
        g, variant="scatter", iterations=10, mode="bulk", **kw
    ),
    "wcc-bulk": lambda g, **kw: run_wcc(g, variant="basic", mode="bulk", **kw),
}


def planted_skew(num_vertices: int, num_workers: int) -> np.ndarray:
    """Contiguous equal-vertex ranges: every worker gets V/W vertices but
    worker 0 gets the hubs, so its arc load dominates."""
    return np.minimum(
        np.arange(num_vertices) * num_workers // num_vertices, num_workers - 1
    ).astype(np.int64)


def _policy(num_workers: int) -> RebalancePolicy:
    # library defaults except a short warmup: benches want the first
    # legal firing opportunity measured, not the conservative cadence
    return RebalancePolicy(num_workers=num_workers, min_supersteps=2)


def balanced_partition(graph, num_workers: int) -> np.ndarray:
    """The policy's own fixed point: rebalance the planted skew once,
    offline, and return the resulting ownership.  The greedy balancer
    cannot improve its own output, so the no-false-fire control run uses
    exactly the partition a converged live system would be sitting on."""
    policy = RebalancePolicy(num_workers=num_workers, cooldown=0)
    policy.skew_threshold = 0.0
    skew = planted_skew(graph.num_vertices, num_workers)
    matrix = np.tile(np.linspace(2.0, 1.0, num_workers), (4, 1))
    plan = policy.propose(skew, graph.indptr, matrix)
    return np.asarray(plan.new_owner, dtype=np.int64) if plan is not None else skew


def _data_equal(a, b, float_tolerant: bool = False) -> bool:
    """Bit-identical data, except ``float_tolerant`` rows use allclose:
    once a migration fires, float sums regroup across workers (the
    dangling-mass aggregator folds per-worker partials in worker order),
    so PageRank values match to rounding, not bit-for-bit."""
    if isinstance(a, np.ndarray):
        if float_tolerant and np.issubdtype(a.dtype, np.floating):
            return bool(np.allclose(a, b, rtol=1e-9, atol=1e-12))
        return bool(np.array_equal(a, b))
    return a == b


def _first_fire(trace_text: str) -> int | None:
    """Superstep of the first "rebalance" instant in a trace, or None."""
    for line in trace_text.splitlines():
        ev = json.loads(line)
        if ev.get("span") == "rebalance":
            return int((ev.get("attrs") or {}).get("superstep", 0))
    return None


def bench_superstep(name: str, graph, num_workers: int) -> dict:
    runner = WORKLOADS[name]
    skew = planted_skew(graph.num_vertices, num_workers)

    t0 = time.perf_counter()
    off = runner(graph, num_workers=num_workers, partition=skew)
    off_wall = time.perf_counter() - t0

    buf = io.StringIO()
    with TraceRecorder(buf) as rec:
        t0 = time.perf_counter()
        reb = runner(
            graph,
            num_workers=num_workers,
            partition=skew,
            rebalance="superstep",
            rebalance_every=2,
            rebalance_policy=_policy(num_workers),
            trace=rec,
        )
        reb_wall = time.perf_counter() - t0
    m = reb[-1].metrics

    # hysteresis control: a converged (fixed-point) partition must never
    # migrate.  Hash — and even degree-range — partitions of small RMAT
    # graphs carry genuine residual skew the balancer can improve, so a
    # firing there would be correct, which is not what this row tests.
    bal = runner(
        graph,
        num_workers=num_workers,
        partition=balanced_partition(graph, num_workers),
        rebalance="superstep",
        rebalance_every=2,
        rebalance_policy=_policy(num_workers),
    )

    fire = _first_fire(buf.getvalue())
    gain = _plan_gain(graph, skew, num_workers)
    return {
        "workload": name,
        "trigger": "superstep",
        "fired": m.num_rebalances > 0,
        "fire_step": fire,
        "rebalances": m.num_rebalances,
        "moved_vertices": m.rebalanced_vertices,
        "moved_arcs": m.rebalanced_arcs,
        "gain_ratio": gain,
        "gain_ok": gain >= 1.3,
        "identical": _data_equal(off[0], reb[0], float_tolerant="pr" in name),
        "no_false_fire": bal[-1].metrics.num_rebalances == 0,
        "supersteps": m.supersteps,
        "off_wall_s": round(off_wall, 4),
        "reb_wall_s": round(reb_wall, 4),
    }


def bench_epoch(graph, num_workers: int, epochs: int, seed: int) -> dict:
    skew = planted_skew(graph.num_vertices, num_workers)
    # small batches: the stream must not shift enough arc mass to turn
    # the converged control partition legitimately imbalanced
    batches = synthesize_stream(graph, epochs, 64, 16, seed=seed)

    def run(**kw):
        eng = EpochEngine(
            graph, WCCStream(), num_workers=num_workers, partition=skew.copy(), **kw
        )
        eng.bootstrap()
        eng.run(batches)
        eng.close()
        return eng

    t0 = time.perf_counter()
    off = run()
    off_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    reb = run(rebalance="epoch", rebalance_policy=_policy(num_workers))
    reb_wall = time.perf_counter() - t0
    bal_eng = EpochEngine(
        graph,
        WCCStream(),
        num_workers=num_workers,
        partition=balanced_partition(graph, num_workers),
        rebalance="epoch",
        rebalance_policy=_policy(num_workers),
    )
    bal_eng.bootstrap()
    bal_eng.run(batches)
    bal_eng.close()

    fire = next(
        (
            e.epoch
            for e in reb.history
            if e.result.metrics.num_rebalances > 0
        ),
        None,
    )
    total = sum(e.result.metrics.num_rebalances for e in reb.history)
    gain = _plan_gain(graph, skew, num_workers)
    return {
        "workload": "wcc-stream",
        "trigger": "epoch",
        "fired": total > 0,
        "fire_step": fire,
        "rebalances": total,
        "moved_vertices": sum(e.result.metrics.rebalanced_vertices for e in reb.history),
        "moved_arcs": sum(e.result.metrics.rebalanced_arcs for e in reb.history),
        "gain_ratio": gain,
        "gain_ok": gain >= 1.3,
        "identical": all(
            a.result.data == b.result.data for a, b in zip(off.history, reb.history)
        ),
        "no_false_fire": sum(
            e.result.metrics.num_rebalances for e in bal_eng.history
        )
        == 0,
        "supersteps": sum(e.result.metrics.supersteps for e in reb.history),
        "off_wall_s": round(off_wall, 4),
        "reb_wall_s": round(reb_wall, 4),
    }


def _plan_gain(graph, owner, num_workers: int) -> float:
    """The cost-model improvement the policy claims for this skew: the
    max-over-workers arc-weighted load ratio of the plan it would emit
    under maximal observed skew (what gain_ratio gates on)."""
    policy = _policy(num_workers)
    policy.skew_threshold = 0.0  # measure the balance math, not the trigger
    matrix = np.tile(np.linspace(2.0, 1.0, num_workers), (4, 1))
    plan = policy.propose(np.asarray(owner), graph.indptr, matrix)
    return round(float(plan.gain_ratio), 4) if plan is not None else 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=10, help="rmat: 2**scale vertices")
    parser.add_argument("--edge-factor", type=int, default=8)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--epochs", type=int, default=4, help="epoch-trigger stream length")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast configuration for CI (scale 8, 2 epochs)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_rebalance.json",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.scale, args.epochs = min(args.scale, 8), min(args.epochs, 2)

    graph = rmat(args.scale, edge_factor=args.edge_factor, seed=args.seed, directed=True)
    rows = [
        bench_superstep(name, graph, args.workers) for name in sorted(WORKLOADS)
    ]
    rows.append(bench_epoch(graph, args.workers, args.epochs, args.seed))

    print(
        render_rows(
            rows,
            title=f"adaptive rebalancing: rmat scale={args.scale} "
            f"ef={args.edge_factor} workers={args.workers} (planted skew)",
            cols=list(rows[0]),
        )
    )

    cpus = os.cpu_count() or 1
    write_artifact(
        args.out,
        rows,
        scale=args.scale,
        edge_factor=args.edge_factor,
        workers=args.workers,
        seed=args.seed,
        epochs=args.epochs,
        cpus=cpus,
        speedup_valid=cpus >= 2,
    )

    problems = []
    for r in rows:
        cell = f"{r['workload']}/{r['trigger']}"
        if not r["identical"]:
            problems.append(f"{cell}: rebalanced run diverged from rebalance-off")
        if not r["fired"]:
            problems.append(f"{cell}: planted skew never triggered a migration")
        if not r["no_false_fire"]:
            problems.append(f"{cell}: balanced partition migrated (hysteresis broken)")
        if not r["gain_ok"]:
            problems.append(
                f"{cell}: cost-model gain {r['gain_ratio']}x is under the 1.3x bar"
            )
        if r["trigger"] == "epoch" and r["fire_step"] is not None and r["fire_step"] > 2:
            problems.append(
                f"{cell}: first migration waited until epoch {r['fire_step']}"
            )
    if problems:
        print("\n".join(f"REBALANCE BENCH FAILED: {p}" for p in problems), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
