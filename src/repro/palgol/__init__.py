"""Palgol-lite: a declarative layer that compiles to channel programs.

The paper's conclusion names its future work: *"we are going to study
the compilation from a high-level declarative domain-specific language
Palgol [34] to our system."*  This package is a working miniature of that
pipeline: algorithm specifications written as a small expression AST
(:mod:`repro.palgol.ast`) are compiled into
:class:`~repro.core.program.VertexProgram` subclasses
(:mod:`repro.palgol.compiler`), with the compiler choosing channels the
way Section III-C describes a human would:

====================================  =================================
pattern in the spec                    channel chosen (optimize=True)
====================================  =================================
``NeighborReduce`` (static)            ScatterCombine
``RemoteRead`` (``D[D[u]]`` style)     RequestRespond
``RemoteUpdate`` with a combiner       CombinedMessage(combiner)
fixpoint/loop control                  Aggregator
====================================  =================================

With ``optimize=False`` the same spec compiles to standard channels only
(CombinedMessage + DirectMessage), which makes the optimizer's effect
measurable on identical semantics.

:mod:`repro.palgol.library` holds specs for S-V (the paper's Palgol
listing, Section III-C), hash-min WCC, pointer jumping, and PageRank.
"""

from repro.palgol.ast import (
    Add,
    Const,
    Deg,
    Div,
    Eq,
    Field,
    FirstNeighbor,
    Lt,
    Mul,
    NeighborReduce,
    NumVertices,
    RemoteRead,
    Sub,
    Var,
    VertexId,
    Assign,
    If,
    Let,
    RemoteUpdate,
    PalgolSpec,
)
from repro.palgol.compiler import compile_palgol, run_palgol, CompileError
from repro.palgol.library import (
    pagerank_spec,
    pointer_jumping_spec,
    sv_spec,
    wcc_spec,
)

__all__ = [
    "Add",
    "Const",
    "Deg",
    "Div",
    "Eq",
    "Field",
    "FirstNeighbor",
    "Lt",
    "Mul",
    "NeighborReduce",
    "NumVertices",
    "RemoteRead",
    "Sub",
    "Var",
    "VertexId",
    "Assign",
    "If",
    "Let",
    "RemoteUpdate",
    "PalgolSpec",
    "compile_palgol",
    "run_palgol",
    "CompileError",
    "pagerank_spec",
    "pointer_jumping_spec",
    "sv_spec",
    "wcc_spec",
]
