"""The observability subsystem: traces, streaming stats, reports.

The contracts under test:

* a trace is **well-formed** for every execution path — sim, process,
  failure+recovery, streaming epochs: every opened span is closed, ids
  strictly increase, supersteps nest under their run span;
* a trace is **exact** where it overlaps the metrics: per-superstep
  ``net_bytes`` / ``messages`` attrs sum to precisely the run's
  ``MetricsCollector`` totals on both backends (these are integer
  counters — no tolerance);
* the **analysis** layer finds what it claims to find: an artificially
  delayed worker is flagged as a straggler, a spiked superstep as an
  anomaly, a sustained level shift as drift;
* the **CLI** round-trips: ``repro run --trace`` writes a file that
  ``repro report`` reads, renders, and exports to Chrome trace format.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.__main__ import main as cli_main
from repro.algorithms.wcc import WCCBasic, run_wcc
from repro.core.engine import ChannelEngine
from repro.graph import rmat
from repro.obs import (
    EwmaBaseline,
    TraceRecorder,
    TraceReport,
    anomaly_score,
    chrome_trace_events,
    detect_drift,
    ewma,
    export_chrome_trace,
    load_trace,
    moving_average,
    straggler_scores,
    validate_trace,
    zscore_outliers,
)
from repro.streaming import EpochEngine, PageRankStream
from repro.streaming.updates import synthesize_stream

from helpers import line_graph

_GRAPH = rmat(7, edge_factor=4, seed=5, directed=False)


def _traced_wcc(tmp_path, name, **engine_kwargs):
    """Run WCC with a trace attached; returns (events, EngineResult)."""
    path = tmp_path / f"{name}.jsonl"
    with TraceRecorder(path) as rec:
        _, result = run_wcc(_GRAPH, mode="bulk", trace=rec, **engine_kwargs)
    return load_trace(path), result


# ---------------------------------------------------------------------------
# the recorder itself
# ---------------------------------------------------------------------------
class TestTraceRecorder:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceRecorder(path) as rec:
            run = rec.begin("run", workers=2)
            step = rec.begin("superstep", parent=run, superstep=1)
            rec.complete("phase", 0.25, parent=step, worker=0, phase="compute")
            rec.instant("round", parent=step, net_bytes=64)
            rec.end(step, messages=3)
            rec.end(run)
        events = load_trace(path)
        assert [e["ev"] for e in events] == ["B", "B", "X", "I", "E", "E"]
        assert events[2]["dur"] == 0.25
        assert events[4]["attrs"] == {"messages": 3}
        assert validate_trace(events) == []

    def test_ids_strictly_increase(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceRecorder(path) as rec:
            ids = [rec.instant("checkpoint") for _ in range(5)]
        assert ids == sorted(ids) and len(set(ids)) == 5

    def test_close_force_ends_open_spans_innermost_first(self, tmp_path):
        path = tmp_path / "t.jsonl"
        rec = TraceRecorder(path)
        run = rec.begin("run")
        rec.begin("superstep", parent=run)
        rec.close()
        rec.close()  # idempotent
        events = load_trace(path)
        ends = [e for e in events if e["ev"] == "E"]
        assert [e["span"] for e in ends] == ["superstep", "run"]
        assert all(e["attrs"]["forced_close"] for e in ends)
        assert validate_trace(events) == []

    def test_unknown_span_kind_rejected(self, tmp_path):
        with TraceRecorder(tmp_path / "t.jsonl") as rec:
            with pytest.raises(ValueError, match="unknown span kind"):
                rec.begin("nonsense")

    def test_write_after_close_raises(self, tmp_path):
        rec = TraceRecorder(tmp_path / "t.jsonl")
        rec.close()
        with pytest.raises(RuntimeError, match="closed"):
            rec.instant("checkpoint")

    def test_load_trace_names_bad_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"ev":"I","span":"run","id":1,"t":0}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            load_trace(path)

    def test_validate_catches_malformed_traces(self):
        assert validate_trace(
            [{"ev": "E", "span": "run", "id": 1, "t": 0.0}]
        )  # E without B
        assert validate_trace(
            [{"ev": "B", "span": "run", "id": 1, "parent": None, "t": 0.0}]
        )  # never closed
        assert validate_trace(
            [
                {"ev": "B", "span": "run", "id": 2, "parent": None, "t": 0.0},
                {"ev": "B", "span": "superstep", "id": 1, "parent": 2, "t": 0.0},
            ]
        )  # ids not increasing


# ---------------------------------------------------------------------------
# streaming statistics
# ---------------------------------------------------------------------------
class TestStats:
    def test_moving_average(self):
        assert moving_average([1, 2, 3, 4], 2) == [1.0, 1.5, 2.5, 3.5]
        assert moving_average([], 3) == []

    def test_ewma_seeds_on_first_value(self):
        out = ewma([10, 10, 10], alpha=0.3)
        assert out == [10.0, 10.0, 10.0]
        assert ewma([0, 10], alpha=0.5) == [0.0, 5.0]

    def test_anomaly_score(self):
        assert anomaly_score(5.0, 1.0, 2.0) == 2.0
        assert anomaly_score(5.0, 1.0, 0.0) == 0.0  # flat baseline

    def test_zscore_outliers(self):
        values = [1.0] * 20 + [100.0]
        assert zscore_outliers(values) == [20]
        assert zscore_outliers([1.0, 1.0, 1.0]) == []

    def test_detect_drift_on_level_shift_only(self):
        flat = [1.0] * 30
        assert detect_drift(flat) == []
        shifted = [1.0] * 15 + [3.0] * 15
        flagged = detect_drift(shifted)
        assert flagged and all(i >= 15 for i in flagged)

    def test_ewma_baseline_scores_spike_not_warmup(self):
        base = EwmaBaseline()
        series = [1.0, 1.02, 0.98, 1.01, 0.99, 50.0]
        scores = [base.update(v) for v in series]
        assert scores[:3] == [0.0, 0.0, 0.0]  # warmup
        assert scores[-1] > 3.0

    def test_ewma_baseline_flat_series_never_flags(self):
        # zero spread means no z-score, by the same rule as anomaly_score;
        # real timing series always jitter, so this only bites synthetic data
        base = EwmaBaseline()
        assert [base.update(1.0) for _ in range(6)] == [0.0] * 6
        assert base.update(50.0) == 0.0

    def test_straggler_scores(self):
        # worker 1 runs 3x the peer on every superstep
        matrix = np.array([[1.0, 3.0]] * 5)
        scores = straggler_scores(matrix)
        assert scores[1] > 1.4 > scores[0]
        # no timing signal at all -> no skew claimed
        assert straggler_scores(np.zeros((4, 3))).tolist() == [1.0, 1.0, 1.0]


# ---------------------------------------------------------------------------
# trace invariants over real engine runs (satellite: both backends emit
# the same schema, so every test here parametrizes over executors)
# ---------------------------------------------------------------------------
_EXECUTORS = ("sim", "process")


class TestEngineTraces:
    @pytest.mark.parametrize("executor", _EXECUTORS)
    def test_trace_well_formed_and_nested(self, tmp_path, executor):
        events, _ = _traced_wcc(
            tmp_path, f"wf-{executor}", num_workers=2, executor=executor
        )
        assert validate_trace(events) == []
        report = TraceReport(events)
        assert len(report.run_ids) == 1
        run_id = report.run_ids[0]
        # every superstep span is a direct child of the run span
        steps = [
            e for e in events if e["ev"] == "B" and e["span"] == "superstep"
        ]
        assert steps and all(e["parent"] == run_id for e in steps)

    @pytest.mark.parametrize("executor", _EXECUTORS)
    def test_superstep_attrs_sum_exactly_to_metrics(self, tmp_path, executor):
        """Acceptance: per-superstep net_bytes/messages recorded in the
        trace sum to *exactly* the MetricsCollector totals."""
        events, result = _traced_wcc(
            tmp_path, f"sum-{executor}", num_workers=2, executor=executor
        )
        m = result.metrics
        totals = TraceReport(events).superstep_totals(
            TraceReport(events).run_ids[0]
        )
        assert totals["supersteps"] == m.supersteps
        assert totals["net_bytes"] == m.total_net_bytes
        assert totals["local_bytes"] == m.total_local_bytes
        assert totals["messages"] == m.total_messages

    @pytest.mark.parametrize("executor", _EXECUTORS)
    def test_phase_set_uniform_across_backends(self, tmp_path, executor):
        """Satellite: the sim backend records the same phase vocabulary
        as the process backend, so traces are schema-identical."""
        events, result = _traced_wcc(
            tmp_path, f"ph-{executor}", num_workers=2, executor=executor
        )
        phase_names = {
            e["attrs"]["phase"]
            for e in events
            if e["ev"] == "X" and e["span"] == "phase"
        }
        assert phase_names == {"barrier", "compute", "serialize", "exchange"}
        assert phase_names == set(result.metrics.phase_totals())

    @pytest.mark.parametrize("executor", _EXECUTORS)
    def test_phase_breakdown_matches_metrics(self, tmp_path, executor):
        events, result = _traced_wcc(
            tmp_path, f"bd-{executor}", num_workers=2, executor=executor
        )
        report = TraceReport(events)
        breakdown = report.phase_breakdown(report.run_ids[0])
        for phase, seconds in result.metrics.phase_totals().items():
            # trace durations are rounded to 1ns on write
            assert breakdown[phase] == pytest.approx(seconds, abs=1e-8)

    def test_recovered_run_records_failure_and_recovery(self, tmp_path):
        """Satellite: a run that loses worker 1 at superstep 3 and rolls
        back still yields a well-formed trace carrying the checkpoint /
        failure / recovery instants in causal order."""
        events, result = _traced_wcc(
            tmp_path,
            "recovery",
            num_workers=2,
            checkpoint_every=2,
            failures=[(1, 3)],
            recovery="rollback",
        )
        assert validate_trace(events) == []
        report = TraceReport(events)
        faults = report.fault_events(report.run_ids[0])
        kinds = [f["span"] for f in faults]
        assert "checkpoint" in kinds and "failure" in kinds and "recovery" in kinds
        assert kinds.index("failure") < kinds.index("recovery")
        assert [f["t"] for f in faults] == sorted(f["t"] for f in faults)
        # re-executed supersteps appear as extra superstep spans, and the
        # byte totals still reconcile with the metrics (which also count
        # the replayed work)
        totals = report.superstep_totals(report.run_ids[0])
        assert totals["supersteps"] == result.metrics.supersteps
        assert totals["net_bytes"] == result.metrics.total_net_bytes

    def test_summary_surfaces_phase_totals(self):
        """Satellite: summary() carries phase_* keys when phases were
        recorded, and omits them when they weren't."""
        _, result = run_wcc(_GRAPH, mode="bulk", num_workers=2)
        summary = result.metrics.summary()
        for phase in ("barrier", "compute", "serialize", "exchange"):
            assert summary[f"phase_{phase}"] > 0.0
        from repro.runtime.metrics import MetricsCollector

        empty = MetricsCollector(num_workers=2)
        assert not [k for k in empty.summary() if k.startswith("phase_")]


# ---------------------------------------------------------------------------
# streaming epochs
# ---------------------------------------------------------------------------
class TestStreamingTraces:
    def test_epochs_nest_under_one_stream_span(self, tmp_path):
        graph = rmat(7, edge_factor=4, seed=9, directed=True)
        batches = synthesize_stream(
            graph, num_epochs=2, insertions_per_epoch=30, deletions_per_epoch=10, seed=3
        )
        path = tmp_path / "stream.jsonl"
        with TraceRecorder(path) as rec:
            engine = EpochEngine(
                graph, PageRankStream(iterations=4), num_workers=2, trace=rec
            )
            engine.bootstrap()
            engine.run(batches)
            engine.close()
        events = load_trace(path)
        assert validate_trace(events) == []
        streams = [e for e in events if e["ev"] == "B" and e["span"] == "stream"]
        assert len(streams) == 1
        report = TraceReport(events)
        epochs = report.children(streams[0]["id"], "epoch")
        assert len(epochs) == 3  # bootstrap + 2 batches
        assert len(report.run_ids) == 3
        # every run span hangs off an epoch span
        epoch_ids = {e["id"] for e in epochs}
        for rid in report.run_ids:
            assert report._begin[rid]["parent"] in epoch_ids


# ---------------------------------------------------------------------------
# straggler + anomaly detection on real runs
# ---------------------------------------------------------------------------
class _SleepyWCC(WCCBasic):
    """WCC whose worker 1 dawdles in compute — the planted straggler."""

    def compute(self, v):
        if self.worker.worker_id == 1:
            time.sleep(0.002)
        super().compute(v)


class TestDetection:
    def test_delayed_worker_flagged_as_straggler(self, tmp_path, capsys):
        """Acceptance: an artificially delayed worker is flagged by the
        straggler report, end to end through the CLI."""
        path = tmp_path / "straggler.jsonl"
        with TraceRecorder(path) as rec:
            ChannelEngine(
                line_graph(16), _SleepyWCC, num_workers=2, trace=rec
            ).run()
        report = TraceReport(load_trace(path))
        flagged = report.straggler_report(report.run_ids[0], threshold=1.5)
        assert flagged["stragglers"] == [1]
        assert flagged["scores"][1] > 1.5 > flagged["scores"][0]

        assert cli_main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "STRAGGLERS" in out and "worker 1" in out

    def test_spiked_superstep_flagged_as_anomaly(self, tmp_path):
        run_spans = []
        path = tmp_path / "spike.jsonl"
        with TraceRecorder(path) as rec:
            run = rec.begin("run", workers=1)
            for step in range(12):
                sid = rec.begin("superstep", parent=run, superstep=step + 1)
                # steady ~10ms with natural jitter, one 500ms spike
                dur = 0.5 if step == 9 else 0.01 + 0.0005 * (step % 3)
                rec.complete(
                    "phase", dur, parent=sid, worker=0, phase="compute"
                )
                rec.end(sid, net_bytes=0, local_bytes=0, messages=0, rounds=1)
            rec.end(run)
            run_spans.append(run)
        report = TraceReport(load_trace(path))
        anomalies = report.anomaly_report(run_spans[0])
        assert [s["superstep"] for s in anomalies["spikes"]] == [10]


# ---------------------------------------------------------------------------
# chrome exporter
# ---------------------------------------------------------------------------
class TestChromeExport:
    def test_export_layout(self, tmp_path):
        events, _ = _traced_wcc(tmp_path, "chrome", num_workers=2)
        out = tmp_path / "chrome.json"
        payload = export_chrome_trace(events, out)
        assert json.loads(out.read_text()) == payload
        traced = payload["traceEvents"]
        # named tracks: the engine plus one per worker
        names = {
            (e["tid"], e["args"]["name"])
            for e in traced
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {(0, "engine"), (1, "worker 0"), (2, "worker 1")}
        # B/E balance on the structural track
        assert sum(e["ph"] == "B" for e in traced) == sum(
            e["ph"] == "E" for e in traced
        )
        # phase spans land on their worker's track with µs durations
        phases = [e for e in traced if e["ph"] == "X" and e["cat"] == "phase"]
        assert phases and all(e["tid"] in (1, 2) for e in phases)
        assert all(e["dur"] >= 0 for e in phases)

    def test_superstep_names_carry_number(self, tmp_path):
        events, _ = _traced_wcc(tmp_path, "names", num_workers=2)
        traced = chrome_trace_events(events)
        begins = [
            e["name"] for e in traced if e["ph"] == "B" and e["cat"] == "superstep"
        ]
        # superstep numbering in traces is 0-based (SuperstepRecord.superstep)
        assert begins[0] == "superstep 0"


# ---------------------------------------------------------------------------
# CLI round trip
# ---------------------------------------------------------------------------
class TestCli:
    def test_run_trace_report_round_trip(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        chrome = tmp_path / "chrome.json"
        assert (
            cli_main(
                [
                    "run",
                    "wcc",
                    "--dataset",
                    "tree",
                    "--workers",
                    "2",
                    "--trace",
                    str(trace),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "trace written" in out and "phase_compute" in out
        assert validate_trace(load_trace(trace)) == []

        assert cli_main(["report", str(trace), "--chrome", str(chrome)]) == 0
        out = capsys.readouterr().out
        assert "supersteps" in out and "phases (critical-path s)" in out
        assert json.loads(chrome.read_text())["traceEvents"]

    def test_report_json_output(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        cli_main(
            ["run", "wcc", "--dataset", "tree", "--workers", "2", "--trace", str(trace)]
        )
        capsys.readouterr()
        assert cli_main(["report", str(trace), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["problems"] == []
        assert payload["runs"][0]["totals"]["supersteps"] > 0

    def test_report_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("definitely not json\n")
        assert cli_main(["report", str(bad)]) == 2
        assert "not a trace event" in capsys.readouterr().err

    def test_report_fails_on_malformed_trace(self, tmp_path, capsys):
        # valid JSON lines, broken structure: the run span never ends
        bad = tmp_path / "unclosed.jsonl"
        bad.write_text('{"ev":"B","span":"run","id":1,"parent":null,"t":0.0}\n')
        assert cli_main(["report", str(bad)]) == 1
        assert "never closed" in capsys.readouterr().out

    def test_stream_trace(self, tmp_path, capsys):
        from repro.graph.generators import erdos_renyi
        from repro.graph.io import save_edgelist, save_update_stream

        g = erdos_renyi(200, 3.0, seed=21, directed=True)
        gpath = tmp_path / "g.txt"
        save_edgelist(g, gpath)
        upath = tmp_path / "u.txt"
        save_update_stream(synthesize_stream(g, 2, 5, 5, seed=22), upath)
        trace = tmp_path / "stream.jsonl"
        assert (
            cli_main(
                [
                    "stream",
                    "wcc",
                    "--graph",
                    str(gpath),
                    "--updates",
                    str(upath),
                    "--workers",
                    "2",
                    "--trace",
                    str(trace),
                ]
            )
            == 0
        )
        capsys.readouterr()
        events = load_trace(trace)
        assert validate_trace(events) == []
        streams = [e for e in events if e["ev"] == "B" and e["span"] == "stream"]
        assert len(streams) == 1
        assert len(TraceReport(events).run_ids) == 3  # bootstrap + 2 epochs
