"""Persistent worker-process pools for the process backend.

PR 4's backend spawned one process per worker per ``run()`` and tore
everything down at the end — correct, but it made every streaming epoch
pay full process-startup, shared-memory-export, and module-import cost.
A :class:`WorkerPool` keeps the worker processes alive instead:

* **spawn once** — processes are created the first time a configuration
  is loaded (so first-run program factories may be closures or locally
  defined classes: under the ``fork`` start method they reach the child
  by inheritance, never crossing a pipe);
* **reconfigure, don't respawn** — a *different* engine (a new streaming
  epoch's graph view, remapped ownership, new refresh program) is loaded
  into the live children via ``configure`` control messages carrying the
  new shared-memory specs and the program factory as pickle bytes
  (:class:`~repro.core.program.ProgramSpec` makes the streaming
  planners' dynamically parameterized programs picklable);
* **supervised failure injection** — :meth:`kill` makes a worker process
  exit hard (the real crash path: the parent sees a dead PID, not an
  error reply) and :meth:`respawn` builds a replacement on the *same*
  peer-to-peer frame pipes, which stay usable because the parent keeps
  its own handles to every pipe end open;
* **leak-free teardown** — cleanup runs via ``weakref.finalize``
  (which also fires at interpreter exit, i.e. ``atexit``): graceful
  ``stop``, then terminate stragglers, close every pipe, and unlink all
  shared-memory segments.  :meth:`shutdown` is explicit and idempotent.

The pool is deliberately engine-agnostic: it knows configurations
(graph + ownership + seeds + program factory), commands, and replies —
the superstep drive loop lives in
:class:`~repro.runtime.parallel.backend.ProcessBackend`.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import weakref

import numpy as np

from repro.runtime.parallel.protocol import (
    WorkerProcessError,
    check_liveness,
    recv_supervised,
    send_msg,
)
from repro.runtime.parallel.shm import (
    DEFAULT_RING_CAPACITY,
    RingBuffer,
    SharedArrayExport,
)
from repro.runtime.parallel.worker_proc import worker_main

__all__ = ["WorkerPool"]

#: exit code used for injected worker deaths (visible in the
#: WorkerProcessError message, distinguishable from real crashes)
INJECTED_EXIT_CODE = 43


def _mp_context():
    # fork keeps program factories (often closures or dynamically created
    # classes) out of pickle entirely; spawn is the portable fallback and
    # requires picklable factories
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


class _PoolState:
    """The pool's OS-level resources, shared with the ``weakref.finalize``
    callback (which must not reference the pool itself, or it would keep
    it alive forever)."""

    __slots__ = ("procs", "control", "frame_send", "frame_recv", "rings", "export")

    def __init__(self) -> None:
        self.procs: list = []
        self.control: list = []
        # parent-side handles of every worker<->worker frame pipe end;
        # keeping them open is what lets a respawned replacement reuse
        # the surviving peers' pipes (and why peers never see EOF)
        self.frame_send: list[dict] = []
        self.frame_recv: list[dict] = []
        # shm transport: (src, dst) -> RingBuffer, parent-owned (the
        # parent reads barrier votes from the header slots and unlinks
        # the segments at shutdown; respawned replacements re-attach)
        self.rings: dict = {}
        self.export: SharedArrayExport | None = None


def _shutdown_state(state: _PoolState) -> None:
    """Tear a pool's processes and OS resources down (finalizer body;
    must never raise — it also runs at interpreter exit)."""
    for conn in state.control:
        try:
            send_msg(conn, {"cmd": "stop"})
        except Exception:
            pass
    for proc in state.procs:
        try:
            proc.join(timeout=0.5)
        except Exception:
            pass
    for proc in state.procs:
        try:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        except Exception:
            pass
    conns = list(state.control)
    for row in state.frame_send + state.frame_recv:
        conns.extend(row.values())
    for conn in conns:
        try:
            conn.close()
        except Exception:
            pass
    for ring in state.rings.values():
        try:
            ring.close(unlink=True)
        except Exception:
            pass
    if state.export is not None:
        try:
            state.export.close()
        except Exception:
            pass
    state.procs = []
    state.control = []
    state.frame_send = []
    state.frame_recv = []
    state.rings = {}
    state.export = None


class WorkerPool:
    """A persistent set of ``num_workers`` worker processes.

    One pool serves one engine configuration at a time;
    :meth:`ensure` switches configurations (spawning on first use,
    reconfiguring the live children afterwards).  ``spawn_count`` counts
    every worker process ever started — the streaming tests assert it
    stays at ``num_workers`` across a whole multi-epoch run.

    ``transport`` picks the frame data plane: ``"shm"`` (the default)
    moves codec frames worker-to-worker through per-pair shared-memory
    ring buffers with barrier votes batched into the ring headers;
    ``"pipe"`` is the portable fallback over OS pipes with per-peer
    sender threads.  Both are driven by
    :class:`~repro.runtime.parallel.backend.ProcessBackend` to
    bit-identical results.  A single-worker pool has no peers to
    exchange with, so it always uses the pipe protocol.
    ``ring_capacity`` sizes each ring's data area in bytes (frames
    larger than a ring stream through it in chunks).
    """

    def __init__(
        self,
        num_workers: int,
        ctx=None,
        transport: str = "shm",
        ring_capacity: int = DEFAULT_RING_CAPACITY,
    ) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        if transport not in ("shm", "pipe"):
            raise ValueError(
                f"transport must be 'shm' or 'pipe', got {transport!r}"
            )
        self.num_workers = num_workers
        #: the effective transport ("shm" degenerates to "pipe" at n=1:
        #: there is no peer traffic for rings to carry)
        self.transport = transport if num_workers > 1 else "pipe"
        self.ring_capacity = int(ring_capacity)
        self._seq = 0  # superstep sequence for ring-slot barrier votes
        self._ctx = ctx if ctx is not None else _mp_context()
        self._state = _PoolState()
        self._finalizer: weakref.finalize | None = None
        self._cfg: dict | None = None  # current configuration (live objects)
        self._child_cfg: dict | None = None  # its shared-memory spec form
        self._owner_view: np.ndarray | None = None  # parent view of shared owner
        self.generation: int | None = None  # engine generation currently loaded
        self._evicted: set[int] = set()  # generations replaced by a later one
        self.num_channels: int | None = None
        self.spawn_count = 0  # worker processes ever started (incl. respawns)
        self.broken = False
        self._closed = False

    # -- lifecycle ---------------------------------------------------------
    @property
    def started(self) -> bool:
        return bool(self._state.procs)

    @property
    def closed(self) -> bool:
        return self._closed

    def ensure(self, cfg: dict, generation: int) -> None:
        """Make ``cfg`` the live configuration.

        ``cfg`` holds live objects: ``graph`` (a
        :class:`~repro.graph.graph.Graph`), ``owner`` (the partition
        array), ``seeds`` (initial active set or ``None``), and
        ``factory`` (the program factory).  ``generation`` identifies the
        engine the configuration belongs to; re-running the same engine
        on the pool is a no-op here, so live worker state survives
        between its runs (matching the simulator, where a finished
        engine's second ``run()`` sees every vertex halted).

        Loading a *different* generation evicts the current one — its
        worker state is gone for good, so a later attempt to run the
        evicted engine on this pool is refused rather than silently
        re-executed from scratch (which would diverge from the
        simulator's second-run-is-a-no-op contract).
        """
        if self._closed:
            raise WorkerProcessError("worker pool is shut down")
        if self.broken:
            raise WorkerProcessError(
                "worker pool is broken (a worker process failed); "
                "construct a new pool"
            )
        if generation in self._evicted:
            raise WorkerProcessError(
                "this engine's configuration was already replaced on the "
                "pool by a later engine, and its worker state is gone; a "
                "pool serves one engine at a time — construct a new engine "
                "(or a new pool) to run again"
            )
        if not self.started:
            self._spawn(cfg)
        elif self.generation != generation:
            self._reconfigure(cfg)
            self._evicted.add(self.generation)
        self.generation = generation

    def _share_config(self, cfg: dict) -> tuple[SharedArrayExport, dict]:
        """Export a configuration's arrays into fresh shared memory and
        build the child-side spec dict."""
        graph = cfg["graph"]
        export = SharedArrayExport()
        # attach-by-path beats copy-into-shm: a graph whose store already
        # lives on disk (mmap) ships to children as just its path — the
        # kernel page cache shares the physical pages across processes,
        # and the parent never pays a CSR-sized copy.  Everything else is
        # exported into POSIX shared memory exactly as before.
        graph_desc = graph.store.describe()
        if graph_desc is None:
            csr = graph.csr_arrays()
            graph_desc = {
                "kind": "shm",
                "num_vertices": graph.num_vertices,
                "directed": graph.directed,
                "indptr": export.share(csr["indptr"]),
                "indices": export.share(csr["indices"]),
                "weights": export.share(csr["weights"]) if "weights" in csr else None,
            }
        # the owner segment stays parent-writable: adaptive rebalancing
        # rewrites the partition in place at a quiescent barrier and every
        # child (and any later respawn, which attaches the same segment)
        # observes the migrated ownership
        owner_spec, owner_view = export.share_writable(
            np.asarray(cfg["owner"], dtype=np.int64)
        )
        self._owner_view = owner_view
        child_cfg = {
            "num_vertices": graph.num_vertices,
            "directed": graph.directed,
            "num_workers": self.num_workers,
            "graph": graph_desc,
            "owner": owner_spec,
            "seeds": cfg["seeds"],
            # see attach_array: spawned children must drop their private
            # resource tracker's claim on the parent's segments
            "unregister_shm": self._ctx.get_start_method() != "fork",
            "init_channels": False,
            # live telemetry attachment spec ({"name", "num_workers"} or
            # None); each child writes its own slot of the segment
            "live": cfg.get("live"),
        }
        return export, child_cfg

    def _spawn(self, cfg: dict) -> None:
        state = self._state
        ctx = self._ctx
        n = self.num_workers
        export, child_cfg = self._share_config(cfg)
        state.export = export
        self._cfg = cfg
        self._child_cfg = child_cfg

        state.frame_send = [{} for _ in range(n)]
        state.frame_recv = [{} for _ in range(n)]
        if self.transport == "shm":
            # one SPSC ring per ordered worker pair; parent-owned so the
            # segments outlive any individual worker process (a respawned
            # replacement re-attaches by spec and adopts the cursors)
            for src in range(n):
                for dst in range(n):
                    if src != dst:
                        state.rings[(src, dst)] = RingBuffer.create(
                            self.ring_capacity
                        )
        else:
            # frame pipes: one simplex pipe per ordered worker pair; the
            # parent retains both ends of every pipe for respawn support
            for src in range(n):
                for dst in range(n):
                    if src == dst:
                        continue
                    r, s = ctx.Pipe(duplex=False)
                    state.frame_send[src][dst] = s
                    state.frame_recv[dst][src] = r

        # arm the cleanup before anything starts: a failure partway
        # through the spawn loop must still release the processes already
        # started and the exported segments
        self._finalizer = weakref.finalize(self, _shutdown_state, state)

        for w in range(n):
            state.procs.append(None)
            state.control.append(None)
            self._start_process(w, dict(child_cfg, program_factory=cfg["factory"]))

        # startup barrier: every worker attached the shared graph and
        # constructed its channel set
        counts = {self._ready(w, "startup") for w in range(n)}
        self._set_num_channels(counts)

    def _ring_args(self, w: int) -> dict | None:
        """Ring-buffer specs for worker ``w`` (``None`` on pipe pools):
        the rings it produces into and the rings it consumes from."""
        if self.transport != "shm":
            return None
        rings = self._state.rings
        n = self.num_workers
        return {
            "num_workers": n,
            "unregister": self._ctx.get_start_method() != "fork",
            "out": {dst: rings[(w, dst)].spec for dst in range(n) if dst != w},
            "in": {src: rings[(src, w)].spec for src in range(n) if src != w},
        }

    def _start_process(self, w: int, spawn_cfg: dict) -> None:
        state = self._state
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=worker_main,
            args=(
                w,
                spawn_cfg,
                child_conn,
                state.frame_send[w],
                state.frame_recv[w],
                self._ring_args(w),
            ),
            daemon=True,
            name=f"repro-worker-{w}",
        )
        proc.start()
        state.procs[w] = proc
        state.control[w] = parent_conn
        self.spawn_count += 1

    def _ready(self, w: int, phase: str) -> int:
        reply = self.reply(w, phase)
        return int(reply["num_channels"])

    def _set_num_channels(self, counts: set[int]) -> None:
        if len(counts) != 1:  # pragma: no cover - factory determinism guard
            raise WorkerProcessError(
                f"worker processes constructed differing channel sets: {sorted(counts)}"
            )
        self.num_channels = counts.pop()

    def _reconfigure(self, cfg: dict) -> None:
        """Load a new engine configuration into the live children — the
        delta/remap path that replaces respawning between streaming
        epochs.  The factory must be picklable here (use
        :class:`~repro.core.program.ProgramSpec` for dynamically
        parameterized programs)."""
        try:
            factory_bytes = pickle.dumps(cfg["factory"])
        except Exception as exc:
            raise WorkerProcessError(
                "cannot ship this program factory to the persistent worker "
                "pool: it does not pickle "
                f"({type(exc).__name__}: {exc}).  Reusing a pool across "
                "engines requires a picklable factory — e.g. a module-level "
                "class or repro.core.program.ProgramSpec"
            ) from exc

        old_export = self._state.export
        export, child_cfg = self._share_config(cfg)
        self._state.export = export
        self._cfg = cfg
        self._child_cfg = child_cfg
        try:
            for w in range(self.num_workers):
                self.send(
                    w, {"cmd": "configure", "cfg": child_cfg, "factory": factory_bytes}
                )
            counts = {self._ready(w, "reconfigure") for w in range(self.num_workers)}
            self._set_num_channels(counts)
        finally:
            # on success the children confirmed the new attachments and
            # dropped the old ones; on failure the pool is poisoned and
            # the children are going away regardless — either way the
            # previous generation's segments are released here, keeping
            # pool memory flat across arbitrarily many epochs
            if old_export is not None:
                old_export.close()

    def start_run(self) -> None:
        """Initialize every worker's channels (the per-run step the
        simulator performs at the top of ``ChannelEngine.run``)."""
        self.broadcast({"cmd": "start_run"})
        self.gather("start_run")

    def update_owner(self, new_owner: np.ndarray) -> None:
        """Rewrite the shared ownership array in place (adaptive
        rebalancing).  Children are quiescent — blocked on their control
        pipes at a superstep barrier — when this runs, so there are no
        concurrent readers; they observe the migrated partition when the
        following ``remap`` command rebuilds their workers, and any later
        respawn attaches the same (updated) segment."""
        new_owner = np.asarray(new_owner, dtype=np.int64)
        view = self._owner_view
        if view is None or view.shape != new_owner.shape:
            raise WorkerProcessError(
                "pool has no live shared ownership array matching the plan"
            )
        view[...] = new_owner
        if self._cfg is not None:
            self._cfg = dict(self._cfg, owner=new_owner)

    # -- failure injection -------------------------------------------------
    def kill(self, w: int) -> None:
        """Make worker ``w``'s process exit hard, then await its (never
        coming) reply so the death surfaces through the *real*
        supervision path — :func:`recv_supervised` notices the dead PID
        and raises :class:`WorkerProcessError`, exactly as it would for
        an OOM-kill or segfault.  Callers injecting failures catch that
        error and proceed to recovery.  Always raises."""
        proc = self._state.procs[w]
        send_msg(self._state.control[w], {"cmd": "die", "code": INJECTED_EXIT_CODE})
        proc.join(timeout=30)
        if proc.is_alive():  # pragma: no cover - defensive
            proc.terminate()
            proc.join(timeout=5)
        self.reply(w, f"injected failure of worker {w}")
        raise WorkerProcessError(  # pragma: no cover - supervision guard
            f"worker process {w} replied after an injected death"
        )

    def respawn(self, w: int) -> None:
        """Start a replacement process for worker ``w`` on the same frame
        pipes (fresh control pipe, current configuration).  The
        replacement builds its program from the factory and initializes
        its channels, mirroring ``ChannelEngine.rebuild_worker``; the
        caller then restores checkpointed state into it."""
        try:
            self._state.control[w].close()
        except Exception:  # pragma: no cover
            pass
        spawn_cfg = dict(
            self._child_cfg,
            program_factory=self._cfg["factory"],
            init_channels=True,
        )
        self._start_process(w, spawn_cfg)
        count = self._ready(w, "respawn")
        if count != self.num_channels:  # pragma: no cover - determinism guard
            raise WorkerProcessError(
                f"respawned worker {w} constructed {count} channels, "
                f"expected {self.num_channels}"
            )

    # -- command plane -----------------------------------------------------
    def send(self, w: int, msg: dict) -> None:
        send_msg(self._state.control[w], msg)

    def reply(self, w: int, phase: str) -> dict:
        state = self._state
        return recv_supervised(
            state.control[w], w, state.procs, phase, conns=state.control
        )

    def broadcast(self, msg: dict) -> None:
        for conn in self._state.control:
            send_msg(conn, msg)

    def gather(self, phase: str) -> list[dict]:
        return [self.reply(w, phase) for w in range(self.num_workers)]

    # -- shm-transport barrier plane ----------------------------------------
    def next_seq(self) -> int:
        """A fresh superstep sequence number for the ring-slot barrier
        votes.  Pool-owned and strictly monotonic across runs, rollback
        rewinds, reconfigurations, and respawns — the slots live in the
        ring segments, so a stale vote can never satisfy a newer wait."""
        self._seq += 1
        return self._seq

    def read_vote(self, w: int, seq: int) -> int:
        """Worker ``w``'s barrier vote for superstep ``seq``, read from
        the header slot of one of its outbound rings.  Supervised: a
        worker dying before it votes raises :class:`WorkerProcessError`
        (with its scavenged traceback) instead of hanging."""
        state = self._state
        ring = state.rings[(w, (w + 1) % self.num_workers)]
        return ring.read_slot(
            seq,
            check=lambda: check_liveness(
                state.procs, "superstep vote", state.control
            ),
        )

    # -- teardown ----------------------------------------------------------
    def shutdown(self) -> None:
        """Stop the workers and release every OS resource.  Idempotent;
        also runs automatically when the pool is garbage collected or the
        interpreter exits."""
        self._closed = True
        if self._finalizer is not None:
            self._finalizer()  # weakref.finalize: at most one invocation

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = (
            "closed"
            if self._closed
            else "broken"
            if self.broken
            else "live"
            if self.started
            else "idle"
        )
        return (
            f"WorkerPool({self.num_workers} workers, {status}, "
            f"spawned={self.spawn_count})"
        )
