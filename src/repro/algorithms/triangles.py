"""Triangle counting (undirected), the classic Pregel wedge-check.

Orient every edge from lower to higher id.  For each oriented wedge
``u -> v, u -> w`` (``v < w``), vertex ``u`` sends a probe ``w`` to ``v``;
``v`` confirms a triangle iff ``w`` is among its (oriented) neighbors.
Every triangle ``a < b < c`` is found exactly once — as ``a``'s wedge
``(b, c)`` checked at ``b``.

Communication is one probe per wedge, so this is the most
message-intensive algorithm in the library; the per-vertex probe lists
make it a natural DirectMessage workload, with an Aggregator reducing the
global count.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    Aggregator,
    ChannelEngine,
    DirectMessage,
    SUM_I64,
    Vertex,
    VertexProgram,
)
from repro.graph.graph import Graph
from repro.runtime.serialization import INT32

__all__ = ["TriangleCounting", "run_triangles"]


class TriangleCounting(VertexProgram):
    """Three supersteps: probe, check, read the aggregate."""

    def __init__(self, worker):
        super().__init__(worker)
        self.probes = DirectMessage(worker, value_codec=INT32)
        self.agg = Aggregator(worker, SUM_I64)
        self.total = 0

    def _oriented(self, v: Vertex) -> np.ndarray:
        nbrs = v.edges
        return np.unique(nbrs[nbrs > v.id])

    def compute(self, v: Vertex) -> None:
        if self.step_num == 1:
            higher = self._oriented(v)
            # probe v's smaller oriented neighbor with each larger one
            send = self.probes.send_message
            for i in range(higher.size):
                for j in range(i + 1, higher.size):
                    send(int(higher[i]), int(higher[j]))
            v.vote_to_halt()
        elif self.step_num == 2:
            mine = set(self._oriented(v).tolist())
            found = sum(1 for w in self.probes.get_iterator(v).tolist() if w in mine)
            if found:
                self.agg.add(found)
            v.vote_to_halt()
        else:
            self.total = int(self.agg.result())
            v.vote_to_halt()

    def before_superstep(self) -> None:
        # steps 2 and 3 need every vertex that must check or read
        if self.worker.step_num in (1, 2):
            self.worker.activate_local_bulk(np.arange(self.worker.num_local))

    def finalize(self) -> dict:
        return {f"triangles_{self.worker.worker_id}": self.total}


def run_triangles(graph: Graph, **engine_kwargs):
    """Count triangles; returns ``(count, EngineResult)``."""
    if graph.directed:
        raise ValueError("triangle counting expects an undirected graph")
    result = ChannelEngine(graph, TriangleCounting, **engine_kwargs).run()
    counts = {v for k, v in result.data.items() if str(k).startswith("triangles_")}
    assert len(counts) == 1, "aggregator must broadcast one global count"
    return counts.pop(), result
