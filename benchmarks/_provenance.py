"""Shared benchmark-artifact writer.

Every ``BENCH_*.json`` records the same provenance next to its rows —
the producing commit (``git_describe``) and the run's parameters — so a
number in the repo can always be traced to the code and configuration
that made it.  This helper keeps the three bench scripts from each
growing their own copy of that envelope.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.runner import git_describe

__all__ = ["write_artifact"]


def write_artifact(path: Path, rows: list[dict], **meta) -> None:
    """Write ``{**meta, git, rows}`` as indented JSON and announce it."""
    payload = {**meta, "git": git_describe(), "rows": rows}
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")
