"""Refresh planning: what one epoch's engine run should do.

A :class:`StreamAlgorithm` turns (previous state, applied batch) into a
:class:`RefreshPlan` — a program factory plus the seed active set.  The
contract every implementation must honour (tested by the streaming parity
matrix) is **incremental correctness**: after the refresh run,
``result.data`` is bit-identical to a cold full run of the library
algorithm on the mutated graph.  Incremental refreshes are free to do
*less* work (fewer active vertices, fewer messages) but never to produce
approximately-equal results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.graph.graph import Graph
from repro.streaming.delta import ApplyStats
from repro.util import expand_ranges

__all__ = ["RefreshPlan", "StreamAlgorithm", "out_neighbor_mask", "in_neighbor_mask"]

REFRESH_MODES = ("incremental", "full")


@dataclass
class RefreshPlan:
    """One epoch's marching orders for the engine.

    ``seeds`` is the initial active set as global vertex ids (``None``
    means all vertices — a cold/full refresh); ``affected`` counts the
    vertices the plan expects to touch (for the per-epoch metrics).
    """

    program_factory: Callable
    seeds: np.ndarray | None
    affected: int
    mode: str  # "incremental" | "full"
    meta: dict = field(default_factory=dict)


class StreamAlgorithm:
    """Base class: one streaming-capable algorithm (PageRank, WCC, SSSP).

    Subclasses implement :meth:`plan` and :meth:`collect`; ``state`` is an
    opaque per-algorithm dict handed back to the next epoch's ``plan``.
    ``state is None`` or ``refresh == "full"`` must yield a cold plan.
    """

    name: str = "?"

    def plan(
        self,
        old_graph: Graph,
        new_graph: Graph,
        stats: ApplyStats | None,
        state: dict | None,
        refresh: str,
    ) -> RefreshPlan:
        raise NotImplementedError

    def collect(self, engine, result) -> dict:
        """Extract the next epoch's warm state from a finished run."""
        raise NotImplementedError

    def cold_run(self, graph: Graph, num_workers: int, partition: np.ndarray):
        """Reference full run of the library algorithm (used by parity
        tests and the benchmark's cold baseline); returns
        ``(data_array, EngineResult)``."""
        raise NotImplementedError


def out_neighbor_mask(graph: Graph, mask: np.ndarray) -> np.ndarray:
    """Boolean mask of all out-neighbors of the masked vertex set."""
    rows = np.flatnonzero(mask)
    out = np.zeros(graph.num_vertices, dtype=bool)
    if rows.size:
        deg = graph.indptr[rows + 1] - graph.indptr[rows]
        pos = expand_ranges(graph.indptr[rows], deg)
        out[graph.indices[pos]] = True
    return out


def in_neighbor_mask(graph: Graph, mask: np.ndarray) -> np.ndarray:
    """Boolean mask of all in-neighbors of the masked vertex set."""
    if not graph.directed:
        return out_neighbor_mask(graph, mask)
    graph._ensure_reverse()
    rows = np.flatnonzero(mask)
    out = np.zeros(graph.num_vertices, dtype=bool)
    if rows.size:
        indptr, indices = graph._rev_indptr, graph._rev_indices
        deg = indptr[rows + 1] - indptr[rows]
        pos = expand_ranges(indptr[rows], deg)
        out[indices[pos]] = True
    return out
