"""Boruvka MSF on the Pregel+ baseline.

The paper singles MSF out as "a typical example that uses heterogeneous
messages": the largest message stores an edge record while the smallest
is a single int.  With one monolithic type, every pointer query and reply
is shipped in the full edge-record width — the message overhead Table IV
reports (23–44%).

The phase structure is identical to :class:`repro.algorithms.msf.MSFBasic`;
only the message layer differs.
"""

from __future__ import annotations

import numpy as np

from repro.core.combiner import SUM_I64
from repro.graph.graph import Graph
from repro.pregel import PregelPlusEngine, PregelProgram
from repro.runtime.serialization import FLOAT32, INT32, struct_codec

__all__ = ["MSFPregel", "run_msf_pregel"]

#: monolithic union: tag + the widest variant (an edge record)
TAGGED_EDGE = struct_codec(
    [("tag", INT32), ("a", INT32), ("b", INT32), ("c", INT32), ("w", FLOAT32)],
    name="msf_tagged",
)

(
    TAG_CYC_Q,
    TAG_CYC_R,
    TAG_JREQ,
    TAG_JREP,
    TAG_REL_Q,
    TAG_REL_R,
    TAG_SHIP,
) = range(7)


def _edge_key(w: float, ou: int, ov: int) -> tuple:
    return (w, min(ou, ov), max(ou, ov))


class MSFPregel(PregelProgram):
    message_codec = TAGGED_EDGE
    combiner = None
    aggregator_combiner = SUM_I64

    def __init__(self, worker):
        super().__init__(worker)
        n = worker.num_local
        self.D = np.full(n, -1, dtype=np.int64)
        self.edges: list[list[tuple]] = [[] for _ in range(n)]
        self.pending_pick: list[tuple | None] = [None] * n
        self.jdone = np.zeros(n, dtype=bool)
        self.forest: list[tuple] = []
        self.state = "init"

    # -- controller (identical to the channel version) ----------------------
    def before_superstep(self) -> None:
        s = self.state
        if s == "init":
            self.state = "pick"
        elif s == "pick":
            self.state = "cycle_reply"
        elif s == "cycle_reply":
            self.state = "cycle_resolve"
        elif s == "cycle_resolve":
            self.state = "jump_send"
            self.jdone[:] = False
            self.worker.activate_local_bulk(np.arange(self.worker.num_local))
        elif s == "jump_send":
            if (self.agg_result or 0) == 0:
                self.state = "relabel_query"
                self._wake_holders()
            else:
                self.state = "jump_reply"
        elif s == "jump_reply":
            self.state = "jump_send"
        elif s == "relabel_query":
            self.state = "relabel_reply"
        elif s == "relabel_reply":
            self.state = "ship"
        elif s == "ship":
            if (self.agg_result or 0) == 0:
                self.state = "end"
            else:
                self.state = "pick"

    def _wake_holders(self) -> None:
        holders = [i for i, e in enumerate(self.edges) if e]
        if holders:
            self.worker.activate_local_bulk(np.asarray(holders, dtype=np.int64))

    # -- vertex logic ------------------------------------------------------------
    def compute(self, v, messages) -> None:
        msgs = messages if messages else []
        s = self.state
        if s == "pick":
            self._phase_pick(v, msgs)
        elif s == "cycle_reply":
            d = int(self.D[v.local])
            for m in msgs:
                if m[0] == TAG_CYC_Q:
                    v.send_message(int(m[1]), (TAG_CYC_R, d, 0, 0, 0.0))
        elif s == "cycle_resolve":
            self._phase_cycle_resolve(v, msgs)
        elif s == "jump_send":
            self._phase_jump_send(v, msgs)
        elif s == "jump_reply":
            d = int(self.D[v.local])
            for m in msgs:
                if m[0] == TAG_JREQ:
                    v.send_message(int(m[1]), (TAG_JREP, d, 0, 0, 0.0))
        elif s == "relabel_query":
            targets = {e[3] for e in self.edges[v.local]}
            for c in sorted(targets):
                v.send_message(int(c), (TAG_REL_Q, v.id, 0, 0, 0.0))
        elif s == "relabel_reply":
            d = int(self.D[v.local])
            for m in msgs:
                if m[0] == TAG_REL_Q:
                    v.send_message(int(m[1]), (TAG_REL_R, v.id, d, 0, 0.0))
        elif s == "ship":
            self._phase_ship(v, msgs)
        else:
            v.vote_to_halt()

    def _phase_pick(self, v, msgs) -> None:
        i = v.local
        if self.D[i] == -1:
            self.D[i] = v.id
            if v.out_degree:
                ws = (
                    v.edge_weights
                    if self.worker.graph.weighted
                    else np.ones(v.out_degree)
                )
                self.edges[i] = [
                    (v.id, int(e), float(w), int(e)) for e, w in zip(v.edges, ws)
                ]
        for m in msgs:
            if m[0] == TAG_SHIP:
                self.edges[i].append((int(m[1]), int(m[2]), float(m[4]), int(m[3])))
        if not self.edges[i]:
            v.vote_to_halt()
            return
        best = min(self.edges[i], key=lambda e: _edge_key(e[2], e[0], e[1]))
        self.pending_pick[i] = best
        c = best[3]
        self.D[i] = c
        v.send_message(c, (TAG_CYC_Q, v.id, 0, 0, 0.0))

    def _phase_cycle_resolve(self, v, msgs) -> None:
        i = v.local
        replies = [m for m in msgs if m[0] == TAG_CYC_R]
        if not replies:
            return
        best = self.pending_pick[i]
        self.pending_pick[i] = None
        c = int(self.D[i])
        dc = int(replies[0][1])
        if dc == v.id and v.id < c:
            self.D[i] = v.id
        else:
            self.forest.append((best[0], best[1], best[2]))

    def _phase_jump_send(self, v, msgs) -> None:
        i = v.local
        if self.jdone[i]:
            return
        replies = [m for m in msgs if m[0] == TAG_JREP]
        if replies:
            p = int(self.D[i])
            gp = int(replies[0][1])
            if gp == p:
                self.jdone[i] = True
                return
            self.D[i] = gp
        d = int(self.D[i])
        if d == v.id:
            self.jdone[i] = True
            return
        v.send_message(d, (TAG_JREQ, v.id, 0, 0, 0.0))
        self.aggregate(1)

    def _phase_ship(self, v, msgs) -> None:
        i = v.local
        root = {int(m[1]): int(m[2]) for m in msgs if m[0] == TAG_REL_R}
        my_root = int(self.D[i])
        shipped = 0
        for ou, ov, w, dst in self.edges[i]:
            new_dst = root[dst]
            if new_dst == my_root:
                continue
            v.send_message(my_root, (TAG_SHIP, ou, ov, new_dst, w))
            shipped += 1
        self.edges[i] = []
        self.aggregate(shipped)
        v.vote_to_halt()

    def finalize(self) -> dict:
        total = sum(w for _, _, w in self.forest)
        return {
            f"forest_{self.worker.worker_id}": list(self.forest),
            f"weight_{self.worker.worker_id}": total,
        }


def run_msf_pregel(graph: Graph, **engine_kwargs):
    """Run Pregel+ Boruvka MSF; returns
    ``(forest_edges, total_weight, EngineResult)``."""
    if graph.directed:
        raise ValueError("MSF needs an undirected graph")
    result = PregelPlusEngine(graph, MSFPregel, mode="basic", **engine_kwargs).run()
    forest: list[tuple] = []
    weight = 0.0
    for key, val in result.data.items():
        if str(key).startswith("forest_"):
            forest.extend(val)
        elif str(key).startswith("weight_"):
            weight += val
    return forest, weight, result
