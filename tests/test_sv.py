"""S-V connected components: all channel combinations and both Pregel+
modes agree with the union-find oracle; composition helps."""

import numpy as np
import pytest

from repro.algorithms.sv import SV_VARIANTS, run_sv
from repro.graph import complete, erdos_renyi, rmat, star
from repro.graph.graph import Graph
from repro.pregel_algorithms.sv import run_sv_pregel
from helpers import line_graph, nx_components, two_triangles


@pytest.fixture(scope="module")
def social():
    return rmat(8, edge_factor=2, seed=5, directed=False)


@pytest.fixture(scope="module")
def dense():
    return erdos_renyi(150, avg_degree=12, seed=3, directed=False)


ALL = [(f"channel-{v}", v) for v in SV_VARIANTS]


@pytest.mark.parametrize("name,variant", ALL, ids=[a[0] for a in ALL])
class TestChannelVariants:
    def test_power_law(self, social, name, variant):
        labels, _ = run_sv(social, variant=variant, num_workers=4)
        np.testing.assert_array_equal(labels, nx_components(social))

    def test_dense(self, dense, name, variant):
        labels, _ = run_sv(dense, variant=variant, num_workers=4)
        np.testing.assert_array_equal(labels, nx_components(dense))

    def test_two_triangles(self, name, variant):
        labels, _ = run_sv(two_triangles(), variant=variant, num_workers=3)
        assert labels.tolist() == [0, 0, 0, 3, 3, 3]

    def test_path(self, name, variant):
        labels, _ = run_sv(line_graph(33), variant=variant, num_workers=4)
        assert np.all(labels == 0)

    def test_star(self, name, variant):
        labels, _ = run_sv(star(17, center=8), variant=variant, num_workers=4)
        assert np.all(labels == 0)

    def test_isolated_vertices(self, name, variant):
        g = Graph.from_edges(5, [(1, 2)], directed=False)
        labels, _ = run_sv(g, variant=variant, num_workers=2)
        assert labels.tolist() == [0, 1, 1, 3, 4]

    def test_complete_graph(self, name, variant):
        labels, _ = run_sv(complete(12), variant=variant, num_workers=3)
        assert np.all(labels == 0)


@pytest.mark.parametrize("mode", ["basic", "reqresp"])
class TestPregelVariants:
    def test_power_law(self, social, mode):
        labels, _ = run_sv_pregel(social, mode=mode, num_workers=4)
        np.testing.assert_array_equal(labels, nx_components(social))

    def test_dense(self, dense, mode):
        labels, _ = run_sv_pregel(dense, mode=mode, num_workers=4)
        np.testing.assert_array_equal(labels, nx_components(dense))


class TestComposition:
    """Table VI's shape: each optimization helps; both helps most."""

    def _bytes(self, g, variant, part):
        _, res = run_sv(g, variant=variant, num_workers=4, partition=part)
        return res.metrics.total_net_bytes

    def test_both_minimizes_bytes(self, social):
        part = np.arange(social.num_vertices) % 4
        b = {v: self._bytes(social, v, part) for v in SV_VARIANTS}
        assert b["both"] < b["reqresp"]
        assert b["both"] < b["scatter"]
        assert b["scatter"] < b["basic"]
        assert b["reqresp"] < b["basic"]

    def test_scatter_wins_on_dense_graphs(self, dense):
        """Twitter-analogue: neighborhood traffic dominates, so the
        scatter-combine channel saves more than request-respond."""
        part = np.arange(dense.num_vertices) % 4
        b = {v: self._bytes(dense, v, part) for v in SV_VARIANTS}
        assert b["scatter"] < b["reqresp"]

    def test_reqresp_shortens_rounds(self, social):
        _, rb = run_sv(social, variant="basic", num_workers=4)
        _, rr = run_sv(social, variant="reqresp", num_workers=4)
        # 3-superstep rounds instead of 4
        assert rr.supersteps < rb.supersteps

    def test_channel_basic_fewer_bytes_than_pregel_basic(self, social):
        """Table IV S-V row: per-channel minimal types vs the monolithic
        tagged union."""
        part = np.arange(social.num_vertices) % 4
        _, rc = run_sv(social, variant="basic", num_workers=4, partition=part)
        _, rp = run_sv_pregel(social, mode="basic", num_workers=4, partition=part)
        assert rc.metrics.total_net_bytes < rp.metrics.total_net_bytes

    def test_both_beats_pregel_reqresp(self, social):
        """The headline: composed channels beat the best Pregel+ mode."""
        part = np.arange(social.num_vertices) % 4
        _, rc = run_sv(social, variant="both", num_workers=4, partition=part)
        _, rp = run_sv_pregel(social, mode="reqresp", num_workers=4, partition=part)
        assert rc.metrics.total_net_bytes < rp.metrics.total_net_bytes
        assert rc.metrics.simulated_time < rp.metrics.simulated_time
