"""WCC: all four systems agree with networkx; propagation converges in
one superstep; Blogel's byte profile."""

import numpy as np
import pytest

from repro.algorithms.wcc import run_wcc
from repro.blogel import run_wcc_blogel
from repro.graph import chain, grid_road, rmat
from repro.graph.graph import Graph
from repro.graph.partition import metis_like_partition
from repro.pregel_algorithms.wcc import run_wcc_pregel
from helpers import nx_components, two_triangles


@pytest.fixture(scope="module")
def web():
    return rmat(8, edge_factor=2, seed=7, directed=True)


RUNNERS = [
    ("channel-basic", lambda g, **kw: run_wcc(g, variant="basic", **kw)),
    ("channel-prop", lambda g, **kw: run_wcc(g, variant="prop", **kw)),
    ("pregel", run_wcc_pregel),
    ("blogel", run_wcc_blogel),
]


@pytest.mark.parametrize("name,runner", RUNNERS, ids=[r[0] for r in RUNNERS])
class TestCorrectness:
    def test_power_law(self, web, name, runner):
        labels, _ = runner(web, num_workers=4)
        np.testing.assert_array_equal(labels, nx_components(web))

    def test_two_triangles(self, name, runner):
        g = two_triangles()
        labels, _ = runner(g, num_workers=2)
        assert labels.tolist() == [0, 0, 0, 3, 3, 3]

    def test_isolated_vertices(self, name, runner):
        g = Graph.from_edges(4, [(0, 1)], directed=False)
        labels, _ = runner(g, num_workers=2)
        assert labels.tolist() == [0, 0, 2, 3]

    def test_high_diameter(self, name, runner):
        g = chain(64).to_undirected()
        labels, _ = runner(g, num_workers=4)
        assert np.all(labels == 0)

    def test_partitioned_input(self, web, name, runner):
        part = metis_like_partition(web, 4, seed=0)
        labels, _ = runner(web, num_workers=4, partition=part)
        np.testing.assert_array_equal(labels, nx_components(web))


class TestConvergence:
    def test_prop_uses_constant_supersteps(self):
        g = chain(256).to_undirected()  # diameter 255
        _, basic = run_wcc(g, variant="basic", num_workers=4)
        _, prop = run_wcc(g, variant="prop", num_workers=4)
        assert prop.supersteps == 2
        assert basic.supersteps > 50  # one hop per superstep

    def test_prop_rounds_shrink_with_partitioning(self):
        g = grid_road(25, 25, seed=1)
        ph = np.arange(g.num_vertices) % 4
        pm = metis_like_partition(g, 4, seed=0)
        _, rh = run_wcc(g, variant="prop", num_workers=4, partition=ph)
        _, rm = run_wcc(g, variant="prop", num_workers=4, partition=pm)
        assert rm.metrics.total_net_bytes < rh.metrics.total_net_bytes

    def test_basic_bytes_equal_between_systems(self, web):
        part = np.arange(web.num_vertices) % 4
        _, rc = run_wcc(web, variant="basic", num_workers=4, partition=part)
        _, rp = run_wcc_pregel(web, num_workers=4, partition=part)
        assert rc.metrics.total_messages == rp.metrics.total_messages

    def test_blogel_messages_match_prop_but_fewer_bytes(self, web):
        """Table V bottom: same message count as the Propagation channel,
        ~1/3 smaller payloads (int32 labels)."""
        part = np.arange(web.num_vertices) % 4
        _, rp = run_wcc(web, variant="prop", num_workers=4, partition=part)
        _, rb = run_wcc_blogel(web, num_workers=4, partition=part)
        assert rb.metrics.total_messages == rp.metrics.total_messages
        assert rb.metrics.total_net_bytes < rp.metrics.total_net_bytes
