"""Unit tests for buffers, cost model, and metrics."""

import numpy as np
import pytest

from repro.runtime.buffers import BufferExchange, WorkerBuffers
from repro.runtime.costmodel import NetworkModel, DEFAULT_NETWORK
from repro.runtime.metrics import MetricsCollector, SuperstepRecord


class TestNetworkModel:
    def test_latency_only_when_empty(self):
        nm = NetworkModel(latency=0.5, bandwidth=1e6)
        assert nm.exchange_time(np.zeros(4), np.zeros(4)) == 0.5

    def test_charges_busiest_worker(self):
        nm = NetworkModel(latency=0.0, bandwidth=100.0)
        send = np.array([100, 0, 0, 0])
        recv = np.array([0, 50, 25, 25])
        # worker 0 sends 100 bytes at 100 B/s -> 1 second
        assert nm.exchange_time(send, recv) == pytest.approx(1.0)

    def test_full_duplex_max_of_send_recv(self):
        nm = NetworkModel(latency=0.0, bandwidth=1.0)
        send = np.array([10, 0])
        recv = np.array([4, 10])
        # worker 0: max(10, 4) = 10; worker 1: max(0, 10) = 10
        assert nm.exchange_time(send, recv) == pytest.approx(10.0)

    def test_skew_costs_more_than_balance(self):
        """The load-imbalance effect the request-respond channel targets:
        the same total bytes cost more when concentrated on one worker."""
        nm = NetworkModel(latency=0.0, bandwidth=1.0)
        skewed = np.array([100.0, 0, 0, 0])
        balanced = np.full(4, 25.0)
        zero = np.zeros(4)
        assert nm.exchange_time(skewed, zero) > nm.exchange_time(balanced, zero)

    def test_per_message_overhead(self):
        nm = NetworkModel(latency=0.0, bandwidth=1.0, per_message_overhead=10)
        t = nm.exchange_time(np.array([5.0]), np.array([0.0]), messages=2)
        assert t == pytest.approx(25.0)

    def test_empty_cluster(self):
        assert DEFAULT_NETWORK.exchange_time(np.zeros(0), np.zeros(0)) == (
            DEFAULT_NETWORK.latency
        )

    def test_default_matches_paper_cluster(self):
        # 750 Mbps ~ 93.75 MB/s
        assert DEFAULT_NETWORK.bandwidth == pytest.approx(93.75e6)


class TestWorkerBuffers:
    def test_out_nbytes_splits_net_and_local(self):
        wb = WorkerBuffers(worker_id=1, num_workers=3)
        wb.out[0].write_bytes(b"abcd")
        wb.out[1].write_bytes(b"xy")  # self
        wb.out[2].write_bytes(b"hello")
        net, local = wb.out_nbytes()
        assert net == 9
        assert local == 2

    def test_clear_inbox(self):
        wb = WorkerBuffers(0, 2)
        wb.inbox[1] = b"data"
        wb.clear_inbox()
        assert wb.inbox == [b"", b""]


class TestBufferExchange:
    def _metrics(self, m):
        mc = MetricsCollector(num_workers=m, network=NetworkModel(latency=0, bandwidth=1e9))
        mc.start_run()
        mc.start_superstep()
        return mc

    def test_pairwise_delivery(self):
        mc = self._metrics(3)
        bufs = [WorkerBuffers(i, 3) for i in range(3)]
        bufs[0].out[2].write_bytes(b"from0to2")
        bufs[1].out[0].write_bytes(b"from1to0")
        BufferExchange(mc).exchange(bufs)
        assert bufs[2].inbox[0] == b"from0to2"
        assert bufs[0].inbox[1] == b"from1to0"
        assert bufs[1].inbox == [b"", b"", b""]

    def test_self_delivery_counts_as_local(self):
        mc = self._metrics(2)
        bufs = [WorkerBuffers(i, 2) for i in range(2)]
        bufs[0].out[0].write_bytes(b"selfmsg")
        bufs[0].out[1].write_bytes(b"netmsg!")
        BufferExchange(mc).exchange(bufs)
        mc.end_superstep()
        rec = mc.records[0]
        assert rec.local_bytes == 7
        assert rec.net_bytes == 7
        assert bufs[0].inbox[0] == b"selfmsg"

    def test_writers_cleared_after_exchange(self):
        mc = self._metrics(2)
        bufs = [WorkerBuffers(i, 2) for i in range(2)]
        bufs[0].out[1].write_bytes(b"x")
        BufferExchange(mc).exchange(bufs)
        assert bufs[0].out[1].nbytes == 0

    def test_bytes_sent_equal_bytes_received(self):
        """Conservation: every net byte sent lands in exactly one inbox."""
        rng = np.random.default_rng(0)
        mc = self._metrics(4)
        bufs = [WorkerBuffers(i, 4) for i in range(4)]
        total = 0
        for i in range(4):
            for j in range(4):
                if i == j:
                    continue
                data = bytes(rng.integers(0, 256, size=rng.integers(0, 50)).tolist())
                bufs[i].out[j].write_bytes(data)
                total += len(data)
        BufferExchange(mc).exchange(bufs)
        mc.end_superstep()
        received = sum(len(b.inbox[src]) for b in bufs for src in range(4))
        assert received == total == mc.records[0].net_bytes


class TestMetricsCollector:
    def test_superstep_accounting(self):
        mc = MetricsCollector(num_workers=2, network=NetworkModel(latency=1.0, bandwidth=1.0))
        mc.start_run()
        mc.start_superstep(active_vertices=10)
        mc.record_compute(0, 0.5)
        mc.record_compute(1, 0.2)
        mc.record_compute(1, 0.1)
        mc.record_exchange(np.array([4, 0]), np.array([0, 4]), local_bytes=2)
        mc.count_messages(3)
        mc.end_superstep()
        mc.end_run()

        assert mc.supersteps == 1
        rec = mc.records[0]
        assert rec.active_vertices == 10
        assert rec.compute_time_max == pytest.approx(0.5)
        assert rec.compute_time_sum == pytest.approx(0.8)
        assert rec.net_bytes == 4
        assert rec.local_bytes == 2
        assert rec.messages == 3
        assert rec.exchange_time == pytest.approx(1.0 + 4.0)
        assert rec.simulated_time == pytest.approx(0.5 + 5.0)
        assert mc.simulated_time == pytest.approx(rec.simulated_time)
        assert mc.wall_time > 0

    def test_totals_sum_over_supersteps(self):
        mc = MetricsCollector(num_workers=1, network=NetworkModel(latency=0, bandwidth=1e9))
        mc.start_run()
        for k in range(3):
            mc.start_superstep()
            mc.record_exchange(np.array([k * 10]), np.array([0]))
            mc.count_messages(k)
            mc.end_superstep()
        mc.end_run()
        assert mc.supersteps == 3
        assert mc.total_net_bytes == 0 + 10 + 20
        assert mc.total_messages == 0 + 1 + 2
        assert mc.total_rounds == 3

    def test_summary_keys(self):
        mc = MetricsCollector(num_workers=1)
        mc.start_run()
        mc.end_run()
        s = mc.summary()
        for key in (
            "supersteps",
            "rounds",
            "net_bytes",
            "local_bytes",
            "messages",
            "simulated_time",
            "wall_time",
        ):
            assert key in s
