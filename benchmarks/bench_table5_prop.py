"""Table V (bottom): the propagation channel on WCC (HCC hash-min).

Programs: Pregel+ basic, Blogel (block-centric), channel basic, channel
propagation — on raw and METIS-like-partitioned input.
Shape targets: propagation converges in O(1) supersteps; Blogel's
messages match propagation's in count but are ~1/3 smaller; partitioning
helps the block-convergent systems most.
"""

import pytest


@pytest.mark.parametrize("partitioned", [False, True], ids=["raw", "metis"])
@pytest.mark.parametrize(
    "program", ["pregel-basic", "blogel", "channel-basic", "channel-prop"]
)
def test_table5_prop(cell, program, partitioned):
    row = cell("wcc", program, "wikipedia", partitioned=partitioned)
    assert row["supersteps"] >= 1
