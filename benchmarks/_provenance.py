"""Shared benchmark-artifact writer.

Every ``BENCH_*.json`` records the same provenance next to its rows —
the producing commit (``git_describe``) and the run's parameters — so a
number in the repo can always be traced to the code and configuration
that made it.  This helper keeps the bench scripts from each growing
their own copy of that envelope.

A benchmark number from a dirty tree is untraceable: the hash names a
commit, the numbers came from code that isn't in it.  ``write_artifact``
therefore flags dirty-tree runs loudly (``"dirty_tree": true`` in the
payload plus a stderr warning), and refuses outright when
``REPRO_BENCH_REQUIRE_CLEAN=1`` is set — CI sets it so a committed
artifact can never silently embed unreviewed code.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from repro.bench.runner import git_describe

__all__ = ["write_artifact"]


def write_artifact(path: Path, rows: list[dict], **meta) -> None:
    """Write ``{**meta, git, rows}`` as indented JSON and announce it."""
    git = git_describe()
    payload = {**meta, "git": git, "rows": rows}
    if git.endswith("-dirty"):
        if os.environ.get("REPRO_BENCH_REQUIRE_CLEAN") == "1":
            raise SystemExit(
                f"refusing to write {path}: working tree is dirty ({git}) "
                "and REPRO_BENCH_REQUIRE_CLEAN=1 — commit or stash first "
                "so the artifact is traceable to a real commit"
            )
        payload["dirty_tree"] = True
        print(
            f"WARNING: {path.name} produced from a dirty tree ({git}) — "
            "the numbers are not traceable to the recorded commit; "
            "flagged with dirty_tree=true",
            file=sys.stderr,
        )
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")
