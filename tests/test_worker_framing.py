"""Worker-level tests: the frame layer that multiplexes channels onto
shared buffers, ownership bookkeeping, and halting/waking mechanics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ChannelEngine, Channel, VertexProgram
from repro.graph.graph import Graph
from helpers import line_graph


def make_engine(n=6, workers=2):
    class Idle(VertexProgram):
        def compute(self, v):
            v.vote_to_halt()

    return ChannelEngine(line_graph(n), Idle, num_workers=workers)


class TestFrameLayer:
    def test_emit_route_roundtrip(self):
        engine = make_engine()
        w0, w1 = engine.workers
        w0.emit(0, 1, b"alpha")
        w0.emit(1, 1, b"beta!")
        w0.emit(0, 1, b"gamma")
        # deliver by hand
        w1.buffers.inbox[0] = w0.buffers.out[1].getvalue()
        routed = w1.route_inbox()
        assert [bytes(p) for _, p in routed[0]] == [b"alpha", b"gamma"]
        assert [bytes(p) for _, p in routed[1]] == [b"beta!"]
        assert all(src == 0 for src, _ in routed[0])

    def test_empty_payload_not_framed(self):
        engine = make_engine()
        w0 = engine.workers[0]
        w0.emit(0, 1, b"")
        assert w0.buffers.out[1].nbytes == 0

    @settings(max_examples=30)
    @given(
        frames=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.binary(min_size=0, max_size=64),
            ),
            max_size=20,
        )
    )
    def test_routing_fuzz(self, frames):
        """Arbitrary interleavings of channel frames survive the trip."""
        engine = make_engine()
        w0, w1 = engine.workers
        expected: dict[int, list[bytes]] = {}
        for cid, payload in frames:
            w0.emit(cid, 1, payload)
            if payload:
                expected.setdefault(cid, []).append(payload)
        w1.buffers.inbox[0] = w0.buffers.out[1].getvalue()
        w0.buffers.out[1].clear()
        routed = w1.route_inbox()
        got = {cid: [bytes(p) for _, p in lst] for cid, lst in routed.items()}
        assert got == expected


class TestOwnership:
    def test_local_index_and_owner(self):
        g = line_graph(6)
        part = np.array([0, 1, 0, 1, 0, 1])
        engine = ChannelEngine(
            g, type("P", (VertexProgram,), {"compute": lambda s, v: v.vote_to_halt()}),
            num_workers=2, partition=part,
        )
        w0, w1 = engine.workers
        assert w0.local_ids.tolist() == [0, 2, 4]
        assert w0.local_index(2) == 1
        assert w0.local_index(1) == -1  # not owned
        assert w0.owner_of(3) == 1
        assert w1.num_local == 3

    def test_every_vertex_owned_exactly_once(self):
        engine = make_engine(n=10, workers=3)
        seen = np.concatenate([w.local_ids for w in engine.workers])
        assert np.sort(seen).tolist() == list(range(10))


class TestHaltWake:
    def test_begin_superstep_resolves_wakes(self):
        engine = make_engine(n=4, workers=1)
        w = engine.workers[0]
        active = w.begin_superstep()
        assert active.tolist() == [0, 1, 2, 3]
        w.halt(1)
        w.halt(2)
        assert w.begin_superstep().tolist() == [0, 3]
        w.activate_local_bulk(np.array([2]))
        assert w.begin_superstep().tolist() == [0, 2, 3]
        # the wake is consumed: 2 stays active only because waking
        # cleared its halted flag
        w.halt(2)
        assert w.begin_superstep().tolist() == [0, 3]

    def test_activate_by_global_id(self):
        engine = make_engine(n=4, workers=2)
        w = engine.workers[engine.owner[3]]
        w.begin_superstep()
        w.halt(w.local_index(3))
        w.activate(3)
        assert w.local_index(3) in w.begin_superstep().tolist()


class TestChannelRegistration:
    def test_channels_get_sequential_ids(self):
        class Multi(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                from repro.core import Aggregator, DirectMessage, SUM_I64

                self.a = DirectMessage(worker)
                self.b = DirectMessage(worker)
                self.c = Aggregator(worker, SUM_I64)

            def compute(self, v):
                v.vote_to_halt()

        engine = ChannelEngine(line_graph(4), Multi, num_workers=2)
        prog = engine.workers[0].program
        assert prog.a.channel_id == 0
        assert prog.b.channel_id == 1
        assert prog.c.channel_id == 2

    def test_custom_channel_minimal_contract(self):
        """A do-nothing Channel subclass participates without breaking
        the engine (the Fig. 3 base-class defaults)."""

        class Noop(Channel):
            def serialize(self):
                pass

            def deserialize(self, payloads):
                self.round += 1

        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.noop = Noop(worker)

            def compute(self, v):
                v.vote_to_halt()

        res = ChannelEngine(line_graph(4), P, num_workers=2).run()
        assert res.supersteps == 1
