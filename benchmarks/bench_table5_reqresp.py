"""Table V (middle): the request-respond channel on pointer jumping.

Programs: Pregel+ basic, Pregel+ reqresp, channel basic, channel
request-respond, on a random tree and a chain.
Shape targets: the channel reqresp beats Pregel+ reqresp on both time and
bytes (positional responses are a constant ~33% smaller); reqresp halves
the superstep count vs basic.
"""

import pytest


@pytest.mark.parametrize("dataset", ["tree", "chain"])
@pytest.mark.parametrize(
    "program", ["pregel-basic", "pregel-reqresp", "channel-basic", "channel-reqresp"]
)
def test_table5_reqresp(cell, dataset, program):
    row = cell("pj", program, dataset)
    assert row["supersteps"] > 2
