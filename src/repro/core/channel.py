"""The ``Channel`` base class (Fig. 3 of the paper).

A channel is a per-worker object responsible for one communication pattern.
Identically-constructed instances on every worker form a *channel group*;
the engine keeps a group in the exchange loop while any instance's
``again()`` returns ``True``.

Lifecycle within one superstep (Fig. 4)::

    compute() on active vertices          # vertices call channel APIs
    for each channel: reset_round()
    while any channel group active:
        serialize()    -> write frames into per-peer buffers
        buffer exchange
        deserialize()  -> read frames received from peers
        group active = OR over workers of again()

Data written during ``serialize`` is framed by the worker
(``emit(peer, payload)``) so multiple channels share the same raw buffer,
as in the paper's architecture (Fig. 2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.worker import Worker

__all__ = ["Channel"]


class Channel:
    """Base class for all channels.

    Subclasses implement ``serialize``/``deserialize`` and may override
    ``initialize`` (one-time setup after graph load) and ``again``
    (request another exchange round this superstep).
    """

    def __init__(self, worker: "Worker") -> None:
        self.worker = worker
        self.channel_id: int = worker.register_channel(self)
        self.round: int = 0

    # -- one-time setup ----------------------------------------------------
    def initialize(self) -> None:
        """Called once, after graph load, before the first superstep."""

    # -- per-superstep round protocol ---------------------------------------
    def reset_round(self) -> None:
        """Called at the start of each superstep's exchange phase."""
        self.round = 0

    def serialize(self) -> None:
        """Write this round's outgoing data into per-peer buffers."""
        raise NotImplementedError

    def deserialize(self, payloads: list[tuple[int, memoryview]]) -> None:
        """Consume this round's incoming data.

        ``payloads`` is a list of ``(src_worker, payload)`` in worker order;
        only non-empty payloads addressed to this channel appear.
        Implementations should bump ``self.round`` here.
        """
        raise NotImplementedError

    def again(self) -> bool:
        """Return ``True`` to request another exchange round (evaluated
        after ``deserialize``).  The default single-round behaviour matches
        plain message passing."""
        return False

    # -- checkpointing -------------------------------------------------------
    def snapshot(self) -> dict:
        """This channel's state at a superstep boundary, as a dict of
        checkpointable values (see :mod:`repro.runtime.checkpoint`).

        Must capture everything a freshly constructed instance needs to
        continue the run bit-identically: in-flight inbox state readable
        next superstep, plus any structure registered by the program
        (static edge sets, expansion tables) that a replacement worker
        cannot re-derive because registration happened in a past
        superstep.  Per-round scratch (pending sends, request queues) is
        always empty at a boundary and need not be captured.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement snapshot(); "
            "checkpointing requires every channel to support it"
        )

    def restore(self, state: dict) -> None:
        """Load the state captured by :meth:`snapshot` into this (possibly
        freshly constructed) instance."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement restore()"
        )

    def migrate_states(self, states: list[dict], ctx) -> list[dict]:
        """Re-key every worker's :meth:`snapshot` dict across an ownership
        change (adaptive rebalancing).

        ``states[w]`` is worker ``w``'s snapshot under the old partition;
        the result must be loadable via :meth:`restore` by workers rebuilt
        under ``ctx.new_owner`` (a
        :class:`~repro.runtime.rebalance.MigrationContext`), such that the
        run continues bit-identically.  Called on an engine's parent-side
        channel instances, which may be uninitialized — implementations
        must use only ``states`` and ``ctx``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support live migration; "
            "override migrate_states() to remap its snapshot state"
        )

    # -- helpers for subclasses ---------------------------------------------
    def emit(self, peer: int, payload: bytes) -> None:
        """Send ``payload`` to this channel's instance on worker ``peer``."""
        self.worker.emit(self.channel_id, peer, payload)

    def count_net_messages(self, n: int) -> None:
        """Account ``n`` network messages to this channel."""
        self.worker.count_net_messages(n, self.channel_id)

    @property
    def num_workers(self) -> int:
        return self.worker.num_workers

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(id={self.channel_id}, worker={self.worker.worker_id})"
