"""Adaptive load rebalancing: straggler-driven vertex migration.

The cost model makes load imbalance the dominant wall-time term — one
exchange round costs the *max* over workers
(:mod:`repro.runtime.costmodel`), so a single skewed partition drags
every superstep.  This module closes the telemetry loop:

* :func:`phase_matrix` turns a run's per-superstep, per-worker phase
  timings (:class:`~repro.runtime.metrics.MetricsCollector`) into the
  ``supersteps x workers`` matrix
  :func:`~repro.obs.stats.straggler_scores` expects;
* :class:`RebalancePolicy` watches that matrix, and when the observed
  skew and the structural arc imbalance both clear its thresholds, emits
  an :class:`OwnershipPlan` that moves **contiguous vertex ranges**
  (weighted by ``indptr`` arc counts, the same balancing currency as
  :func:`~repro.graph.partition.degree_range_partition`) from overloaded
  to underloaded workers — with hysteresis (minimum estimated win,
  cooldown) so it never thrashes;
* :class:`MigrationContext` + :func:`remap_worker_states` re-key live
  worker state (program arrays, halted/woken flags, per-channel
  snapshots in the checkpoint capture format) from the old ownership to
  the new one, so a run can migrate at a superstep barrier and resume
  with bit-identical results.

Everything here is deterministic: the same owner/indptr/matrix inputs
produce the same plan on every backend, which is what makes the
sim/process parity guarantees extend to migrated runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.runtime.costmodel import DEFAULT_NETWORK, NetworkModel

__all__ = [
    "MigrationContext",
    "OwnershipPlan",
    "RebalancePolicy",
    "phase_matrix",
    "remap_worker_states",
]

REBALANCE_MODES = ("off", "epoch", "superstep")

#: phases that measure per-worker *work* (exchange time is shared/maxed
#: by construction, barrier time measures waiting, not load)
WORK_PHASES = ("compute", "serialize")


def phase_matrix(metrics, phases=WORK_PHASES, window: int | None = None) -> np.ndarray:
    """Per-superstep, per-worker seconds spent in ``phases``, summed.

    Returns a float array of shape ``(supersteps, num_workers)`` — the
    exact input :func:`~repro.obs.stats.straggler_scores` wants.  With
    ``window`` only the most recent supersteps are used.  A run with no
    finished supersteps yields shape ``(0, num_workers)``, which scores
    to all-ones (no straggler evidence — the policy declines).
    """
    records = metrics.records
    if window is not None:
        records = records[-int(window) :]
    n = metrics.num_workers
    if not records:
        return np.zeros((0, n), dtype=np.float64)
    rows = np.zeros((len(records), n), dtype=np.float64)
    for i, rec in enumerate(records):
        for phase in phases:
            vals = rec.phases.get(phase)
            if vals is not None:
                rows[i] += np.asarray(vals, dtype=np.float64)
    return rows


@dataclass(frozen=True)
class OwnershipPlan:
    """A concrete migration: the new partition plus its bookkeeping.

    ``moves`` lists ``(start, stop, src, dst)`` half-open vertex-id
    ranges; every vertex in ``[start, stop)`` leaves ``src`` for
    ``dst``.  Loads are in arc-weight units (``arcs + 1`` per vertex);
    the time estimates come from the policy's cost model.
    """

    new_owner: np.ndarray
    moves: tuple
    moved_vertices: int
    moved_arcs: int
    max_load_before: int
    max_load_after: int
    gain_ratio: float
    scores: np.ndarray
    est_win_seconds: float  # per remaining superstep, cost-model estimate
    migrate_seconds: float  # one-off state-shipping cost estimate

    def summary(self) -> dict:
        return {
            "moves": len(self.moves),
            "moved_vertices": int(self.moved_vertices),
            "moved_arcs": int(self.moved_arcs),
            "max_load_before": int(self.max_load_before),
            "max_load_after": int(self.max_load_after),
            "gain_ratio": float(self.gain_ratio),
            "est_win_seconds": float(self.est_win_seconds),
            "migrate_seconds": float(self.migrate_seconds),
        }


@dataclass
class RebalancePolicy:
    """Decides *whether* and *how* to migrate, with hysteresis.

    :meth:`propose` fires only when every gate passes:

    1. not cooling down from a previous migration (``cooldown``);
    2. at least ``min_supersteps`` observed supersteps (degenerate
       inputs — empty runs, one-superstep runs — never migrate);
    3. the observed straggler score clears ``skew_threshold``
       (all-zero phase matrices score to ones and never fire);
    4. the greedy range balancer finds moves whose structural
       ``max_load_before / max_load_after`` clears ``min_gain``.

    The balancer works on the same currency as
    :func:`~repro.graph.partition.degree_range_partition` — per-vertex
    weight ``arcs + 1`` — and moves only contiguous runs of the current
    ownership, so migrated partitions stay range-shaped where they
    started range-shaped.  The proposal is a pure function of
    ``(owner, indptr, matrix)`` plus the cooldown counter, making
    migration sequences reproducible across backends.
    """

    num_workers: int
    skew_threshold: float = 1.2
    min_gain: float = 1.1
    cooldown: int = 1
    window: int = 8
    min_supersteps: int = 2
    state_bytes_per_vertex: int = 64
    network: NetworkModel = DEFAULT_NETWORK
    _cooldown_left: int = field(default=0, init=False, repr=False)

    def propose(
        self, owner: np.ndarray, indptr: np.ndarray, matrix: np.ndarray
    ) -> OwnershipPlan | None:
        """Return a migration plan, or ``None`` to leave ownership alone."""
        # deferred: the obs package pulls in the live plane, which reaches
        # back into runtime.parallel — importing it at module scope would
        # close an import cycle through the executor
        from repro.obs.stats import straggler_scores

        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return None
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] < self.min_supersteps:
            return None
        scores = straggler_scores(matrix)
        if scores.size == 0 or float(scores.max()) < self.skew_threshold:
            return None

        owner = np.asarray(owner, dtype=np.int64)
        indptr = np.asarray(indptr, dtype=np.int64)
        arcs = np.diff(indptr)
        weights = arcs + 1  # +1: isolated vertices still carry state
        new_owner, moves, max_before, max_after = self._balance(owner, weights)
        if not moves:
            return None
        gain_ratio = max_before / max_after if max_after > 0 else 1.0
        if gain_ratio < self.min_gain:
            return None

        changed = new_owner != owner
        moved_vertices = int(changed.sum())
        moved_arcs = int(arcs[changed].sum())
        # per-arc-weight seconds, averaged over the observed window: the
        # matrix row sum is total work per superstep across all workers
        total_weight = int(weights.sum())
        per_weight = float(matrix.mean(axis=0).sum()) / total_weight
        est_win = per_weight * (max_before - max_after)
        # one-off migration cost: each worker ships/receives the state
        # of the vertices it loses/gains, modeled like an exchange round
        send = np.zeros(self.num_workers, dtype=np.int64)
        recv = np.zeros(self.num_workers, dtype=np.int64)
        np.add.at(send, owner[changed], self.state_bytes_per_vertex)
        np.add.at(recv, new_owner[changed], self.state_bytes_per_vertex)
        migrate_seconds = self.network.exchange_time(send, recv)

        self._cooldown_left = self.cooldown
        return OwnershipPlan(
            new_owner=new_owner,
            moves=tuple(moves),
            moved_vertices=moved_vertices,
            moved_arcs=moved_arcs,
            max_load_before=int(max_before),
            max_load_after=int(max_after),
            gain_ratio=float(gain_ratio),
            scores=scores,
            est_win_seconds=float(est_win),
            migrate_seconds=float(migrate_seconds),
        )

    # -- the balancer --------------------------------------------------------
    def _balance(self, owner: np.ndarray, weights: np.ndarray):
        """Greedy suffix-shedding over contiguous ownership runs.

        Overloaded workers (load above the all-worker mean) shed
        suffixes of their contiguous vertex runs to the currently most
        underloaded worker, sized by the run's reversed cumulative
        weights so no recipient is pushed past the mean.  The max load
        never increases (every transfer lands below the old max), and
        every iteration either moves at least one vertex or stops, so
        the loop terminates.  Fully deterministic.
        """
        n = owner.size
        num = self.num_workers
        loads = np.zeros(num, dtype=np.int64)
        if n:
            np.add.at(loads, owner, weights.astype(np.int64, copy=False))
        total = int(loads.sum())
        new_owner = owner.copy()
        moves: list[tuple[int, int, int, int]] = []
        max_before = int(loads.max()) if num else 0
        if total == 0 or num < 2:
            return new_owner, moves, max_before, max_before

        target = total / num
        # contiguous runs of the *current* ownership
        bounds = np.flatnonzero(np.diff(owner)) + 1
        starts = np.concatenate(([0], bounds))
        ends = np.concatenate((bounds, [n]))
        runs_of: list[list[tuple[int, int]]] = [[] for _ in range(num)]
        for lo, hi in zip(starts.tolist(), ends.tolist()):
            runs_of[int(owner[lo])].append((lo, hi))

        worker_ids = np.arange(num)
        order = sorted(range(num), key=lambda w: (-int(loads[w]), w))
        for src in order:
            if loads[src] <= target:
                continue
            for lo, hi in reversed(runs_of[src]):
                while hi > lo and loads[src] > target:
                    masked = np.where(worker_ids == src, np.iinfo(np.int64).max, loads)
                    dst = int(np.argmin(masked))
                    if loads[dst] >= target:
                        break  # nobody left with room
                    excess = float(loads[src]) - target
                    room = target - float(loads[dst])
                    amount = min(excess, room)
                    avail = np.cumsum(weights[lo:hi][::-1])
                    take = int(np.searchsorted(avail, amount, side="right"))
                    if take == 0:
                        # the boundary vertex alone overshoots the room;
                        # still safe iff it fits inside src's excess
                        # (then dst lands strictly below the old max)
                        if float(avail[0]) <= excess:
                            take = 1
                        else:
                            break
                    moved = int(avail[take - 1])
                    cut = hi - take
                    new_owner[cut:hi] = dst
                    loads[src] -= moved
                    loads[dst] += moved
                    moves.append((cut, hi, src, dst))
                    hi = cut
                if loads[src] <= target:
                    break
        return new_owner, moves, max_before, int(loads.max())


class MigrationContext:
    """Index bookkeeping for re-keying worker state across an ownership
    change.

    ``old_locals[w]`` / ``new_locals[w]`` are each worker's sorted
    global vertex ids before / after the migration — exactly the
    ``np.flatnonzero(owner == w)`` order :class:`~repro.core.worker.Worker`
    uses for its local arrays, so gather/scatter by these index sets is
    the complete per-vertex remap.
    """

    def __init__(
        self, old_owner: np.ndarray, new_owner: np.ndarray, num_workers: int
    ) -> None:
        self.old_owner = np.asarray(old_owner, dtype=np.int64)
        self.new_owner = np.asarray(new_owner, dtype=np.int64)
        if self.old_owner.shape != self.new_owner.shape:
            raise ValueError("old and new ownership must cover the same vertices")
        self.num_vertices = int(self.old_owner.size)
        self.num_workers = int(num_workers)
        self.old_locals = [
            np.flatnonzero(self.old_owner == w) for w in range(self.num_workers)
        ]
        self.new_locals = [
            np.flatnonzero(self.new_owner == w) for w in range(self.num_workers)
        ]

    @classmethod
    def from_owners(cls, old_owner, new_owner, num_workers) -> "MigrationContext":
        return cls(old_owner, new_owner, num_workers)

    # -- per-vertex arrays ---------------------------------------------------
    def gather(self, arrays: list[np.ndarray]) -> np.ndarray:
        """Stitch per-old-worker local arrays into one global array."""
        first = np.asarray(arrays[0])
        glob = np.zeros((self.num_vertices,) + first.shape[1:], dtype=first.dtype)
        for w, arr in enumerate(arrays):
            glob[self.old_locals[w]] = arr
        return glob

    def scatter(self, glob: np.ndarray) -> list[np.ndarray]:
        """Slice a global array into per-new-worker local arrays."""
        return [glob[self.new_locals[w]].copy() for w in range(self.num_workers)]

    def remap_vertex_arrays(self, arrays: list[np.ndarray]) -> list[np.ndarray]:
        return self.scatter(self.gather(arrays))

    # -- row-keyed payloads (edges, message inboxes) -------------------------
    def route(self, gids: np.ndarray, *payloads: np.ndarray):
        """Split rows by the new owner of ``gids``, preserving order.

        Yields ``(w, gids_w, payloads_w)`` for every worker (empty
        selections included) — the migration analogue of the exchange
        phase's per-peer buffers.
        """
        gids = np.asarray(gids, dtype=np.int64)
        dest = self.new_owner[gids] if gids.size else np.empty(0, dtype=np.int64)
        for w in range(self.num_workers):
            mask = dest == w
            yield w, gids[mask], tuple(np.asarray(p)[mask] for p in payloads)

    def localize(self, w: int, gids: np.ndarray) -> np.ndarray:
        """Global ids -> worker ``w``'s new local ids (gids must be owned
        by ``w`` under the new partition)."""
        return np.searchsorted(self.new_locals[w], np.asarray(gids, dtype=np.int64))


def remap_worker_states(states: list[dict], ctx: MigrationContext, channels) -> list[dict]:
    """Re-key captured worker states (checkpoint capture format) from the
    old ownership to the new one.

    ``states[w]`` is ``capture_worker_state(worker_w)`` under the *old*
    partition; the return value is loadable via ``load_worker_state``
    into workers rebuilt under the *new* partition.  Program-state keys
    are treated as per-vertex exactly when every worker holds an ndarray
    whose leading dimension equals its old local-vertex count; anything
    else passes through per worker unchanged (scalars, per-worker
    scratch).  Channel snapshots dispatch to each channel's
    ``migrate_states``.
    """
    num = ctx.num_workers
    old_counts = [ctx.old_locals[w].size for w in range(num)]
    out: list[dict] = [{"program": {}, "flags": {}, "channels": []} for _ in range(num)]

    for key in states[0]["program"]:
        vals = [s["program"][key] for s in states]
        per_vertex = all(
            isinstance(v, np.ndarray) and v.ndim >= 1 and v.shape[0] == old_counts[w]
            for w, v in enumerate(vals)
        )
        if per_vertex:
            remapped = ctx.remap_vertex_arrays(vals)
            for w in range(num):
                out[w]["program"][key] = remapped[w]
        else:
            for w in range(num):
                out[w]["program"][key] = vals[w]

    for key in ("halted", "woken"):
        remapped = ctx.remap_vertex_arrays([s["flags"][key] for s in states])
        for w in range(num):
            out[w]["flags"][key] = remapped[w]

    for cid, channel in enumerate(channels):
        migrated = channel.migrate_states([s["channels"][cid] for s in states], ctx)
        for w in range(num):
            out[w]["channels"].append(migrated[w])
    return out
