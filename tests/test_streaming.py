"""Streaming-graph subsystem tests.

The heart is the acceptance parity matrix: for every streaming algorithm
(PageRank, WCC, SSSP) × worker count {2, 8} × batch shape {insert-only,
delete-heavy}, chained over several epochs, the incremental refresh must
produce ``result.data`` **bit-identical** to a cold full run of the
library algorithm on the mutated graph — and to the epoch engine's own
``refresh="full"`` baseline.
"""

import numpy as np
import pytest

from helpers import line_graph, nx_components, nx_sssp
from repro.core import ChannelEngine
from repro.graph.generators import erdos_renyi, grid_road
from repro.graph.graph import Graph
from repro.graph.partition import extend_partition, hash_partition, range_partition
from repro.streaming import (
    DeltaGraph,
    EpochEngine,
    MutationBatch,
    PageRankStream,
    SSSPStream,
    STREAM_ALGORITHMS,
    WCCStream,
    build_pagerank_schedule,
    synthesize_batch,
    synthesize_stream,
)
from repro.streaming.incremental_wcc import still_connected


# ---------------------------------------------------------------------------
# MutationBatch
# ---------------------------------------------------------------------------
class TestMutationBatch:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            MutationBatch(insert_src=np.array([1, 2]), insert_dst=np.array([3]))

    def test_weight_mismatch(self):
        with pytest.raises(ValueError, match="insertion count"):
            MutationBatch(
                insert_src=np.array([1]),
                insert_dst=np.array([2]),
                insert_weights=np.array([1.0, 2.0]),
            )

    def test_negative_ids(self):
        with pytest.raises(ValueError, match="negative"):
            MutationBatch.from_edges(insertions=[(-1, 2)])

    def test_insert_and_delete_same_edge(self):
        with pytest.raises(ValueError, match="both insertions and deletions"):
            MutationBatch.from_edges(insertions=[(0, 1)], deletions=[(0, 1)])

    def test_deleted_vertex_gaining_edges(self):
        with pytest.raises(ValueError, match="also gain edges"):
            MutationBatch.from_edges(insertions=[(0, 1)], delete_vertices=[1])

    def test_size_and_empty(self):
        assert MutationBatch().empty
        b = MutationBatch.from_edges(
            insertions=[(0, 1)], deletions=[(2, 3)], add_vertices=2
        )
        assert b.size == 4 and not b.empty
        assert b.num_insertions == 1 and b.num_deletions == 1


# ---------------------------------------------------------------------------
# DeltaGraph
# ---------------------------------------------------------------------------
def _arc_multiset(g: Graph):
    src, dst = g.edge_array()
    w = np.zeros(src.size) if g.weights is None else g.weights
    return sorted(zip(src.tolist(), dst.tolist(), w.tolist()))


class TestDeltaGraph:
    def test_apply_matches_from_scratch_build(self):
        g = erdos_renyi(50, 3.0, seed=1, directed=True)
        delta = DeltaGraph(g)
        src, dst = g.edge_array()
        batch = MutationBatch.from_edges(
            insertions=[(0, 49), (7, 3)], deletions=[(int(src[0]), int(dst[0]))]
        )
        delta.apply(batch)
        view = delta.view()
        keep = ~((src == src[0]) & (dst == dst[0]))
        expect = Graph(
            50,
            np.concatenate([src[keep], [0, 7]]),
            np.concatenate([dst[keep], [49, 3]]),
            directed=True,
        )
        assert _arc_multiset(view) == _arc_multiset(expect)
        assert delta.num_arcs == view.num_edges

    def test_undirected_symmetrization(self):
        g = line_graph(5)
        delta = DeltaGraph(g)
        delta.apply(MutationBatch.from_edges(insertions=[(0, 4)]))
        assert delta.has_edge(0, 4) and delta.has_edge(4, 0)
        # deleting by the reversed endpoint order removes both arcs
        delta.apply(MutationBatch.from_edges(deletions=[(4, 0)]))
        assert not delta.has_edge(0, 4) and not delta.has_edge(4, 0)

    def test_deleting_missing_edge_raises(self):
        delta = DeltaGraph(line_graph(4))
        with pytest.raises(ValueError, match="non-existent"):
            delta.apply(MutationBatch.from_edges(deletions=[(0, 3)]))

    def test_undirected_reversed_insert_delete_rejected(self):
        # (2,1) insert vs (1,2) delete name the same undirected edge; the
        # batch-level ordered check misses it, apply must not
        delta = DeltaGraph(line_graph(4))
        with pytest.raises(ValueError, match="both insertions and deletions"):
            delta.apply(
                MutationBatch.from_edges(insertions=[(2, 1)], deletions=[(1, 2)])
            )

    def test_out_of_range_raises(self):
        delta = DeltaGraph(line_graph(4))
        with pytest.raises(ValueError, match="out of range"):
            delta.apply(MutationBatch.from_edges(insertions=[(0, 9)]))
        with pytest.raises(ValueError, match="unknown vertex"):
            delta.apply(MutationBatch(delete_vertices=np.array([9])))

    def test_weight_policy(self):
        unweighted = DeltaGraph(line_graph(4))
        with pytest.raises(ValueError, match="must not carry weights"):
            unweighted.apply(
                MutationBatch.from_edges(insertions=[(0, 2)], weights=[1.0])
            )
        weighted = DeltaGraph(line_graph(4, weighted=True))
        with pytest.raises(ValueError, match="need insert_weights"):
            weighted.apply(MutationBatch.from_edges(insertions=[(0, 2)]))

    def test_parallel_copies_all_deleted(self):
        g = Graph(3, np.array([0, 0]), np.array([1, 1]), directed=True)
        delta = DeltaGraph(g)
        delta.apply(MutationBatch.from_edges(deletions=[(0, 1)]))
        assert delta.num_arcs == 0

    def test_vertex_tombstone(self):
        g = line_graph(5)
        delta = DeltaGraph(g)
        stats = delta.apply(MutationBatch(delete_vertices=np.array([2])))
        assert delta.num_vertices == 5  # id survives
        assert delta.out_degree(2) == 0
        assert stats.del_src.size == 4  # both arcs of both incident edges
        # edges elsewhere survive
        assert delta.has_edge(0, 1) and delta.has_edge(3, 4)

    def test_add_vertices_and_reference_them(self):
        delta = DeltaGraph(line_graph(3))
        delta.apply(
            MutationBatch.from_edges(insertions=[(2, 4)], add_vertices=2)
        )
        assert delta.num_vertices == 5
        assert delta.has_edge(2, 4)

    def test_compaction_preserves_view(self):
        g = erdos_renyi(60, 3.0, seed=2, directed=True)
        delta = DeltaGraph(g)
        src, dst = g.edge_array()
        delta.apply(
            MutationBatch.from_edges(
                insertions=[(1, 2), (5, 9)],
                deletions=[(int(src[3]), int(dst[3]))],
            )
        )
        before = _arc_multiset(delta.view())
        assert delta.overlay_arcs == 3
        delta.compact()
        assert delta.overlay_arcs == 0
        assert delta.num_compactions == 1
        assert _arc_multiset(delta.view()) == before

    def test_maybe_compact_threshold(self):
        delta = DeltaGraph(line_graph(10), compact_threshold=0.2)
        assert not delta.maybe_compact()
        delta.apply(
            MutationBatch.from_edges(insertions=[(0, 5), (1, 7), (2, 9)])
        )
        assert delta.maybe_compact()  # 6 overlay arcs > 0.2 * 18
        assert delta.overlay_arcs == 0


# ---------------------------------------------------------------------------
# The acceptance parity matrix
# ---------------------------------------------------------------------------
def _algo_and_graph(name):
    if name == "pagerank":
        return (
            lambda: PageRankStream(iterations=6),
            erdos_renyi(300, 4.0, seed=31, directed=True),
        )
    if name == "wcc":
        return lambda: WCCStream(), erdos_renyi(300, 2.0, seed=32, directed=True)
    return lambda: SSSPStream(source=0), grid_road(16, 16, seed=33)


def _batches(graph, kind, epochs=3):
    if kind == "insert-only":
        return synthesize_stream(graph, epochs, 12, 0, seed=5)
    # delete-heavy, degree protection off: exercises dead-end churn and
    # the schedule's degrade-to-full path as well
    return synthesize_stream(
        graph, epochs, 4, 12, seed=6, protect_degrees=False
    )


class TestParityMatrix:
    @pytest.mark.parametrize("name", sorted(STREAM_ALGORITHMS))
    @pytest.mark.parametrize("workers", [2, 8])
    @pytest.mark.parametrize("kind", ["insert-only", "delete-heavy"])
    # range partitioning localizes the dirty region on few workers, so it
    # exercises workers that sit out the final supersteps — hash almost
    # never does
    @pytest.mark.parametrize("partitioner", ["hash", "range"])
    def test_incremental_is_bit_identical(self, name, workers, kind, partitioner):
        factory, graph = _algo_and_graph(name)
        batches = _batches(graph, kind)
        partition = (
            hash_partition(graph.num_vertices, workers, seed=1)
            if partitioner == "hash"
            else range_partition(graph.num_vertices, workers)
        )
        inc = EpochEngine(
            graph, factory(), num_workers=workers, refresh="incremental",
            partition=partition,
        )
        full = EpochEngine(
            graph, factory(), num_workers=workers, refresh="full",
            partition=partition,
        )
        for batch in batches:
            ei = inc.run_epoch(batch)
            ef = full.run_epoch(batch)
            # identical to the engine's own cold baseline...
            assert ei.data == ef.data
            # ...and to a cold run of the library algorithm on the
            # mutated graph (bit-identical floats, not approx)
            cold, _ = factory().cold_run(inc.graph, workers, inc.owner)
            ids = sorted(ei.data)
            assert np.array_equal(
                np.array([ei.data[v] for v in ids]), cold[np.array(ids)]
            )

    def test_pagerank_worker_idle_at_final_step(self):
        # regression: worker 0 owns only clean sender vertices whose last
        # scheduled participation is step T (sending shares into the
        # dirty region on worker 1); its finalized ranks must still be
        # the step-T+1 history, not the stale step-T compute
        graph = Graph(
            5,
            np.array([0, 1, 1, 2, 3, 4]),
            np.array([1, 0, 2, 3, 2, 3]),
            directed=True,
        )
        partition = np.array([0, 0, 1, 1, 0])
        eng = EpochEngine(
            graph, PageRankStream(iterations=6), num_workers=2, partition=partition
        )
        epoch = eng.run_epoch(MutationBatch.from_edges(insertions=[(4, 2)]))
        assert epoch.refresh == "incremental"
        cold, _ = PageRankStream(iterations=6).cold_run(eng.graph, 2, partition)
        assert np.array_equal(
            np.array([epoch.data[v] for v in range(5)]), cold
        )

    def test_oracle_agreement_after_mutations(self):
        # belt and braces: the streamed results also match independent
        # serial oracles on the final mutated graph
        graph = grid_road(12, 12, seed=40)
        batches = _batches(graph, "delete-heavy")
        wcc = EpochEngine(graph, WCCStream(), num_workers=4)
        sssp = EpochEngine(graph, SSSPStream(source=0), num_workers=4)
        for batch in batches:
            lw = wcc.run_epoch(batch)
            ls = sssp.run_epoch(batch)
        final = wcc.graph
        labels = np.array([lw.data[v] for v in range(final.num_vertices)])
        assert np.array_equal(labels, nx_components(final))
        dist = np.array([ls.data[v] for v in range(final.num_vertices)])
        oracle = nx_sssp(final, 0)
        assert np.allclose(dist, oracle, rtol=0, atol=1e-9, equal_nan=False)

    def test_vertex_insertions_and_deletions(self):
        graph = erdos_renyi(120, 3.0, seed=41, directed=True)
        eng = EpochEngine(graph, WCCStream(), num_workers=4)
        eng.run_epoch(
            MutationBatch.from_edges(
                insertions=[(5, 120), (120, 121)], add_vertices=2
            )
        )
        eng.run_epoch(MutationBatch(delete_vertices=np.array([5])))
        cold, _ = WCCStream().cold_run(eng.graph, 4, eng.owner)
        data = eng.latest.data
        assert np.array_equal(
            np.array([data[v] for v in sorted(data)]), cold[np.array(sorted(data))]
        )
        # PageRank degrades to full on a vertex-count change but stays exact
        pr = EpochEngine(graph, PageRankStream(iterations=5), num_workers=4)
        epoch = pr.run_epoch(
            MutationBatch.from_edges(insertions=[(3, 120)], add_vertices=1)
        )
        assert epoch.refresh == "full"
        cold, _ = PageRankStream(iterations=5).cold_run(pr.graph, 4, pr.owner)
        assert np.array_equal(
            np.array([epoch.data[v] for v in sorted(epoch.data)]), cold
        )


# ---------------------------------------------------------------------------
# Refresh planning internals
# ---------------------------------------------------------------------------
class TestPageRankSchedule:
    def test_full_schedule_shape(self):
        g = erdos_renyi(40, 3.0, seed=8, directed=True)
        sched = build_pagerank_schedule(g, None, None, 5, full=True)
        assert sched.full and sched.affected == 40
        assert sched.dirty[1:].all()
        assert not sched.senders[6].any()  # no sends at the last step

    def test_incremental_dirty_grows_monotonically(self):
        g = erdos_renyi(60, 3.0, seed=9, directed=True)
        delta = DeltaGraph(g)
        src, dst = g.edge_array()
        stats = delta.apply(
            MutationBatch.from_edges(deletions=[(int(src[0]), int(dst[0]))])
        )
        sched = build_pagerank_schedule(
            delta.view(), stats, g.out_degrees == 0, 6, full=False
        )
        assert not sched.full
        for k in range(2, 7):
            assert (sched.dirty[k] <= sched.dirty[k + 1]).all()
        # every dirty vertex's in-neighborhood sends the step before
        assert sched.dirty[2][int(dst[0])]

    def test_empty_delta_schedules_nothing(self):
        g = erdos_renyi(30, 3.0, seed=10, directed=True)
        stats = DeltaGraph(g).apply(MutationBatch())
        sched = build_pagerank_schedule(g, stats, g.out_degrees == 0, 5, full=False)
        assert sched.affected == 0
        assert not sched.active.any()


class TestWCCProbe:
    def test_cycle_edge_survives_probe(self):
        # deleting one edge of a cycle leaves the endpoints connected
        n = 8
        src = np.arange(n, dtype=np.int64)
        g = Graph(n, src, (src + 1) % n, directed=False)
        delta = DeltaGraph(g)
        delta.apply(MutationBatch.from_edges(deletions=[(0, 1)]))
        assert still_connected(delta.view(), 0, 1, cap=64)

    def test_bridge_edge_fails_probe(self):
        g = line_graph(6)
        delta = DeltaGraph(g)
        delta.apply(MutationBatch.from_edges(deletions=[(2, 3)]))
        assert not still_connected(delta.view(), 2, 3, cap=64)

    def test_split_produces_correct_labels(self):
        g = line_graph(6)
        eng = EpochEngine(g, WCCStream(), num_workers=2)
        epoch = eng.run_epoch(MutationBatch.from_edges(deletions=[(2, 3)]))
        labels = np.array([epoch.data[v] for v in range(6)])
        assert np.array_equal(labels, np.array([0, 0, 0, 3, 3, 3]))


# ---------------------------------------------------------------------------
# Epoch engine mechanics
# ---------------------------------------------------------------------------
class TestEpochEngine:
    def test_bootstrap_only_once(self):
        g = erdos_renyi(50, 3.0, seed=12, directed=True)
        eng = EpochEngine(g, WCCStream(), num_workers=2)
        eng.bootstrap()
        with pytest.raises(RuntimeError, match="already bootstrapped"):
            eng.bootstrap()

    def test_empty_batch_is_nearly_free(self):
        g = erdos_renyi(50, 3.0, seed=13, directed=True)
        eng = EpochEngine(g, WCCStream(), num_workers=2)
        base = eng.run_epoch(MutationBatch())  # bootstraps, then empty epoch
        assert base.batch_size == 0
        assert base.result.supersteps == 0
        assert base.result.total_net_bytes == 0
        # results survive the idle epoch
        cold, _ = WCCStream().cold_run(eng.graph, 2, eng.owner)
        assert np.array_equal(
            np.array([base.data[v] for v in range(50)]), cold
        )

    def test_epoch_counters_in_summary(self):
        g = erdos_renyi(50, 3.0, seed=14, directed=True)
        eng = EpochEngine(g, WCCStream(), num_workers=2)
        batch = synthesize_batch(g, 4, 0, seed=3)
        epoch = eng.run_epoch(batch)
        row = epoch.summary()
        assert row["epoch"] == 1
        assert row["refresh"] == "incremental"
        assert row["affected_vertices"] == epoch.affected
        m = epoch.result.metrics
        assert m.epoch == 1 and m.refresh_mode == "incremental"

    def test_partition_stays_aligned_across_growth(self):
        g = erdos_renyi(40, 3.0, seed=15, directed=True)
        eng = EpochEngine(g, WCCStream(), num_workers=4)
        before = eng.owner.copy()
        eng.run_epoch(
            MutationBatch.from_edges(insertions=[(0, 40)], add_vertices=1)
        )
        assert eng.owner.size == 41
        assert np.array_equal(eng.owner[:40], before)

    def test_extend_partition_grouping_invariant(self):
        owner = hash_partition(10, 4, seed=0)
        one_step = extend_partition(owner, 5, 4, seed=7)
        two_step = extend_partition(extend_partition(owner, 2, 4, seed=7), 3, 4, seed=7)
        assert np.array_equal(one_step, two_step)

    def test_bad_refresh_mode(self):
        g = erdos_renyi(20, 2.0, seed=16, directed=True)
        with pytest.raises(ValueError, match="refresh must be"):
            EpochEngine(g, WCCStream(), refresh="lazy")


class TestInitialActive:
    def test_seeded_engine_restricts_first_superstep(self):
        g = erdos_renyi(40, 3.0, seed=17, directed=True)
        # a WCC run seeded at one vertex floods out from it only
        from repro.streaming.incremental_wcc import WCCIncrementalBulk

        warm = np.arange(40, dtype=np.int64)
        prog = type("W", (WCCIncrementalBulk,), {"warm_labels": warm})
        full = ChannelEngine(g, prog, num_workers=2).run()
        seeded = ChannelEngine(
            g, prog, num_workers=2, initial_active=np.array([0])
        ).run()
        assert seeded.metrics.records[0].active_vertices == 1
        assert full.metrics.records[0].active_vertices == 40

    def test_out_of_range_seed_rejected(self):
        g = erdos_renyi(10, 2.0, seed=18, directed=True)
        with pytest.raises(ValueError, match="out-of-range"):
            ChannelEngine(
                g,
                lambda w: None,
                num_workers=2,
                initial_active=np.array([99]),
            )
