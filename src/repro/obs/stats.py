"""Streaming statistics over per-superstep timing series.

Small, dependency-free primitives in the ``aetherops.telemetry`` idiom
(``ewma`` / ``anomaly_score`` / ``detect_drift`` / ``zscore_outliers``),
plus two pieces the engine's own telemetry needs:

* :class:`EwmaBaseline` — an *online* EWMA mean/variance tracker that
  scores each new observation as it arrives (the per-superstep anomaly
  flags in ``repro report`` come from here, and a future adaptive
  repartitioner can feed per-epoch worker timings through it between
  epochs);
* :func:`straggler_scores` — per-worker skew over a supersteps×workers
  timing matrix: how much slower each worker runs than its peers on the
  barrier-synchronized phases, which is exactly the signal that decides
  whether moving vertices would shorten the critical path.

Everything operates on plain sequences/ndarrays so the report tool can
run on a trace file alone, with no engine in the process.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "moving_average",
    "ewma",
    "anomaly_score",
    "zscore_outliers",
    "detect_drift",
    "straggler_scores",
    "EwmaBaseline",
]


def moving_average(values, window: int) -> list[float]:
    """Trailing mean over the last ``window`` observations (shorter at
    the head; empty input -> empty output)."""
    if window < 1:
        raise ValueError("window must be >= 1")
    out = []
    acc = 0.0
    vals = [float(v) for v in values]
    for i, v in enumerate(vals):
        acc += v
        if i >= window:
            acc -= vals[i - window]
        out.append(acc / min(i + 1, window))
    return out


def ewma(values, alpha: float = 0.3) -> list[float]:
    """Exponentially weighted moving average, seeded on the first value."""
    if not 0.0 < alpha <= 1.0:
        raise ValueError("alpha must be in (0, 1]")
    out: list[float] = []
    level = None
    for v in values:
        v = float(v)
        level = v if level is None else alpha * v + (1.0 - alpha) * level
        out.append(level)
    return out


def anomaly_score(value: float, mean: float, std: float) -> float:
    """|z|-score of ``value`` against a baseline; 0 while the baseline
    has no spread (a flat series can't be anomalous against itself)."""
    if std <= 0.0:
        return 0.0
    return abs(float(value) - float(mean)) / float(std)


def zscore_outliers(values, threshold: float = 3.0) -> list[int]:
    """Indices whose global z-score exceeds ``threshold`` (two-sided)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size < 2:
        return []
    std = float(arr.std())
    if std == 0.0:
        return []
    z = np.abs(arr - arr.mean()) / std
    return [int(i) for i in np.flatnonzero(z > threshold)]


def detect_drift(
    values,
    alpha_fast: float = 0.5,
    alpha_slow: float = 0.05,
    threshold: float = 0.5,
    warmup: int = 5,
) -> list[int]:
    """Indices where the fast EWMA has drifted from the slow EWMA by
    more than ``threshold`` (relative).  Catches sustained level shifts
    that per-point z-scores miss: a series that slowly doubles never has
    a single outlying step, but its fast tracker walks away from the
    long-memory baseline.  The first ``warmup`` points are never flagged
    (both trackers start at the same seed)."""
    fast = ewma(values, alpha_fast)
    slow = ewma(values, alpha_slow)
    flags = []
    for i, (f, s) in enumerate(zip(fast, slow)):
        if i < warmup:
            continue
        denom = abs(s) if s else 1e-12
        if abs(f - s) / denom > threshold:
            flags.append(i)
    return flags


def straggler_scores(matrix, eps: float = 1e-9) -> np.ndarray:
    """Per-worker skew score over a ``supersteps × workers`` timing
    matrix: the mean over supersteps of (worker's time / that
    superstep's mean worker time).  1.0 is a perfectly balanced worker;
    2.0 means it ran at twice the average and (on barrier-synchronized
    phases) set the critical path.  Supersteps whose mean is below
    ``eps`` carry no signal and are skipped; all-skipped input returns
    ones (no evidence of skew)."""
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2:
        raise ValueError("need a supersteps x workers matrix")
    means = m.mean(axis=1)
    rows = means > eps
    if not rows.any():
        return np.ones(m.shape[1])
    return (m[rows] / means[rows, None]).mean(axis=0)


@dataclass
class EwmaBaseline:
    """Online EWMA mean/variance with per-observation anomaly scoring.

    ``update(x)`` returns the |z|-score of ``x`` against the baseline
    *before* ``x`` is folded in, so a spike scores against normal
    history rather than against itself.  The first ``warmup``
    observations always score 0 (the baseline isn't trustworthy yet).
    """

    alpha: float = 0.3
    warmup: int = 3
    n: int = 0
    mean: float = 0.0
    var: float = 0.0

    def update(self, value: float) -> float:
        value = float(value)
        score = 0.0
        if self.n >= self.warmup:
            score = anomaly_score(value, self.mean, self.std)
        if self.n == 0:
            self.mean = value
        else:
            delta = value - self.mean
            incr = self.alpha * delta
            self.mean += incr
            # Welford-style EWMA variance (West 1979)
            self.var = (1.0 - self.alpha) * (self.var + delta * incr)
        self.n += 1
        return score

    @property
    def std(self) -> float:
        return float(np.sqrt(self.var))
