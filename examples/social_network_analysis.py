"""Social network analysis with the extended algorithm library.

The paper motivates vertex-centric frameworks with social-network
workloads (its ref. [18]); this example runs a small analysis pipeline —
structure, communities, influence, robustness — entirely through the
channel system:

* graph statistics (degree skew, diameter estimate, clustering),
* connected components (S-V with composed channels),
* influence ranking (PageRank over a ScatterCombine channel),
* triangle count and k-core decomposition,
* a maximal independent set and label-propagation communities.

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro.algorithms import (
    run_kcore,
    run_lpa,
    run_mis,
    run_pagerank,
    run_sv,
    run_triangles,
)
from repro.graph import rmat
from repro.graph.analysis import graph_summary, clustering_coefficient


def main():
    graph = rmat(11, edge_factor=6, seed=17, directed=False)
    print("=== structure ===")
    for key, val in graph_summary(graph).items():
        print(f"  {key:12s} {val}")
    print(f"  clustering   {clustering_coefficient(graph):.4f}")

    print("\n=== components (S-V, composed channels) ===")
    labels, res = run_sv(graph, variant="both", num_workers=8)
    sizes = np.bincount(labels)
    sizes = np.sort(sizes[sizes > 0])[::-1]
    print(f"  {sizes.size} components; largest {sizes[:3].tolist()}")
    print(f"  {res.supersteps} supersteps, {res.metrics.total_net_bytes / 1e3:.0f} KB network")

    print("\n=== influence (PageRank, scatter-combine) ===")
    ranks, _ = run_pagerank(graph, variant="scatter", iterations=20, num_workers=8)
    top = np.argsort(ranks)[::-1][:5]
    for v in top:
        print(f"  vertex {int(v):5d}  rank {ranks[v]:.5f}  degree {graph.out_degree(int(v))}")

    print("\n=== cohesion ===")
    triangles, _ = run_triangles(graph, num_workers=8)
    core, _ = run_kcore(graph, num_workers=8)
    print(f"  triangles: {triangles}")
    print(f"  max coreness: {core.max()} ({np.count_nonzero(core == core.max())} vertices)")

    print("\n=== independent set & communities ===")
    in_set, _ = run_mis(graph, seed=7, num_workers=8)
    print(f"  maximal independent set size: {int(in_set.sum())} / {graph.num_vertices}")
    communities, _ = run_lpa(graph, rounds=8, num_workers=8)
    comm_sizes = np.bincount(communities)
    comm_sizes = np.sort(comm_sizes[comm_sizes > 0])[::-1]
    print(f"  LPA communities: {comm_sizes.size}; largest {comm_sizes[:3].tolist()}")


if __name__ == "__main__":
    main()
