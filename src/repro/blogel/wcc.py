"""Blogel's hash-min connected components block program.

This is the >100-line block-level program the paper contrasts with the
10-line Propagation-channel version: the user must hand-write the
in-block fixpoint (a frontier relaxation over the block's subgraph),
boundary-message generation, and incremental re-propagation on message
arrival.  Labels travel as ``int32`` — Blogel's partition-aware message
format — which is why its message volume undercuts the generic channel.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._common import gather
from repro.blogel.system import BlockProgram, BlogelEngine
from repro.graph.graph import Graph
from repro.runtime.serialization import INT32
from repro.util import expand_ranges, group_starts

__all__ = ["BlogelWCC", "run_wcc_blogel"]


class BlogelWCC(BlockProgram):
    """Hash-min WCC as a block program."""

    value_codec = INT32

    def __init__(self, engine: BlogelEngine, block_id: int, local_ids: np.ndarray):
        super().__init__(engine, block_id, local_ids)
        graph = engine.graph
        n = self.num_local
        self.labels = self.local_ids.copy()  # init: own id

        # build the block-local CSR over undirected adjacency
        local_index = np.full(graph.num_vertices, -1, dtype=np.int64)
        local_index[local_ids] = np.arange(n)
        srcs, dsts = [], []
        for i, vid in enumerate(local_ids):
            nbrs = graph.neighbors(int(vid))
            if graph.directed:
                nbrs = np.concatenate([nbrs, graph.in_neighbors(int(vid))])
            srcs.append(np.full(nbrs.size, i, dtype=np.int64))
            dsts.append(nbrs.astype(np.int64))
        src = np.concatenate(srcs) if srcs else np.empty(0, dtype=np.int64)
        dst = np.concatenate(dsts) if dsts else np.empty(0, dtype=np.int64)
        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        counts = np.bincount(src, minlength=n)
        self.indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=self.indptr[1:])
        self.edst_global = dst
        self.edst_local = local_index[dst]  # -1 for boundary edges
        self._local_index = local_index
        self._first = True

    # -- the hand-written block fixpoint ------------------------------------
    def _propagate(self, frontier: np.ndarray) -> dict[int, int]:
        """Push labels to a local fixpoint; collect boundary updates."""
        labels = self.labels
        indptr = self.indptr
        boundary: dict[int, int] = {}
        while frontier.size:
            counts = indptr[frontier + 1] - indptr[frontier]
            eidx = expand_ranges(indptr[frontier], counts)
            if eidx.size == 0:
                break
            lab = labels[np.repeat(frontier, counts)]
            tgt_local = self.edst_local[eidx]
            remote = tgt_local < 0
            if remote.any():
                rdst = self.edst_global[eidx[remote]]
                rlab = lab[remote]
                for d, l in zip(rdst.tolist(), rlab.tolist()):
                    old = boundary.get(d)
                    if old is None or l < old:
                        boundary[d] = l
            mask = ~remote
            if not mask.any():
                break
            tgt, l = tgt_local[mask], lab[mask]
            order = np.argsort(tgt, kind="stable")
            tgt_s, l_s = tgt[order], l[order]
            uniq, starts = group_starts(tgt_s)
            folded = np.minimum.reduceat(l_s, starts)
            new = np.minimum(labels[uniq], folded)
            changed = new != labels[uniq]
            upd = uniq[changed]
            labels[upd] = new[changed]
            frontier = upd
        return boundary

    def block_compute(self, incoming) -> list[tuple[int, object]]:
        dsts, vals = incoming
        if self._first:
            self._first = False
            frontier = np.arange(self.num_local)
        else:
            local = self._local_index[dsts]
            vals = np.asarray(vals, dtype=np.int64)
            # combine duplicates, then apply improvements
            order = np.argsort(local, kind="stable")
            ls, vs = local[order], vals[order]
            uniq, starts = group_starts(ls)
            folded = np.minimum.reduceat(vs, starts)
            new = np.minimum(self.labels[uniq], folded)
            changed = new != self.labels[uniq]
            frontier = uniq[changed]
            self.labels[frontier] = new[changed]
        if frontier.size == 0:
            return []
        boundary = self._propagate(frontier)
        return [(d, int(l)) for d, l in boundary.items()]

    def finalize(self) -> dict:
        return {int(g): int(l) for g, l in zip(self.local_ids, self.labels)}


def run_wcc_blogel(graph: Graph, **engine_kwargs):
    """Run Blogel WCC; returns ``(labels, EngineResult)``."""
    result = BlogelEngine(graph, BlogelWCC, **engine_kwargs).run()
    return gather(result, graph.num_vertices), result
