"""``RequestRespond``: two-round request/response conversations (Fig. 6).

A vertex asks for an attribute of any other vertex with ``add_request``;
the answer is available via ``get_respond`` in the next superstep.  Two
optimizations over naive messaging, both from the paper:

* **per-worker request dedup** — duplicate requests for the same
  destination collapse into one wire record, so a high-degree responder
  receives at most one request per worker (the load-balance fix);
* **positional responses** — the responder returns a bare value array in
  exactly the order of the (sorted, unique) request ids it received, so
  responses carry no vertex identifiers.  Pregel+'s reqresp mode echoes
  ``(id, value)`` pairs; dropping the echo is the paper's constant ~33%
  respond-size saving.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.channel import Channel
from repro.core.vertex import Vertex
from repro.core.worker import Worker
from repro.runtime.serialization import Codec, INT32, INT64

__all__ = ["RequestRespond"]


class RequestRespond(Channel):
    """Request an attribute of another vertex; receive it next superstep.

    Parameters
    ----------
    worker:
        Owning worker.
    respond_fn:
        ``Vertex -> value``; evaluated on the responder's side for every
        vertex that received a request (the paper's
        ``function<RespT(VertexT)> f``).
    codec:
        Wire codec of response values.
    respond_fn_bulk:
        Optional vectorized override: ``(local_indices: int64 array) ->
        value array``.  When the requested attribute lives in a NumPy state
        array, answering a whole batch is one fancy-indexing expression.
    """

    def __init__(
        self,
        worker: Worker,
        respond_fn: Callable[[Vertex], object],
        codec: Codec = INT64,
        respond_fn_bulk: Callable[[np.ndarray], np.ndarray] | None = None,
        echo_ids: bool = False,
    ) -> None:
        super().__init__(worker)
        self.respond_fn = respond_fn
        self.respond_fn_bulk = respond_fn_bulk
        self.value_codec = codec
        #: ablation switch (D1 in DESIGN.md): ship Pregel+-style (id, value)
        #: responses instead of positional bare values
        self.echo_ids = echo_ids
        self._vertex = Vertex(worker)  # responder-side handle
        self._requests: list[int] = []
        self._requesters: list[int] = []
        # round-0 bookkeeping: what we asked each peer for (sorted unique)
        self._asked: list[np.ndarray] = [
            np.empty(0, dtype=np.int64) for _ in range(worker.num_workers)
        ]
        # round-1 queued responses, per peer
        self._responses_out: list[np.ndarray | None] = [None] * worker.num_workers
        self._echo_ids_out: list[np.ndarray | None] = [None] * worker.num_workers
        self._have_responses = False
        # results readable next superstep
        self._resp_keys = np.empty(0, dtype=np.int64)
        self._resp_vals = np.empty(0, dtype=codec.dtype)
        self._resp_map: dict = {}

    # -- requesting (during compute) ------------------------------------
    def add_request(self, v: Vertex, dst: int) -> None:
        """Request the attribute of global vertex ``dst`` on behalf of ``v``."""
        self._requests.append(dst)
        self._requesters.append(v.local)

    # -- reading (next superstep) -------------------------------------------
    def get_respond(self, dst: int):
        """The responder's value for ``dst`` (requested last superstep)."""
        try:
            return self._resp_map[dst]
        except KeyError:
            raise KeyError(f"vertex {dst} was not requested last superstep") from None

    def has_respond(self, dst: int) -> bool:
        return dst in self._resp_map

    # -- checkpointing -------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "resp_keys": self._resp_keys.copy(),
            "resp_vals": self._resp_vals.copy(),
            "asked": [a.copy() for a in self._asked],
        }

    def restore(self, state: dict) -> None:
        keys = state["resp_keys"].copy()
        vals = state["resp_vals"].copy()
        self._resp_keys = keys
        self._resp_vals = vals
        # same construction as _deserialize_responses, so lookups behave
        # identically (struct-codec values come back as tuples either way)
        self._resp_map = dict(zip(keys.tolist(), vals.tolist()))
        self._asked = [a.copy() for a in state["asked"]]
        self._requests = []
        self._requesters = []
        self._responses_out = [None] * self.num_workers
        self._echo_ids_out = [None] * self.num_workers
        self._have_responses = False

    def migrate_states(self, states: list[dict], ctx) -> list[dict]:
        # the response cache is requester-side, keyed only by the global
        # id that was asked about — there is no per-requester attribution
        # to re-key, so migration is defined only when every worker is
        # fully quiescent (no cached responses, no outstanding asks);
        # that is the state between supersteps whenever the program
        # consumed its responses, which it must to make progress
        for w, s in enumerate(states):
            if s["resp_keys"].size or any(a.size for a in s["asked"]):
                raise RuntimeError(
                    f"RequestRespond on worker {w} holds cached responses "
                    "or outstanding requests; migration is only defined "
                    "when the channel is quiescent"
                )
        return [dict(s) for s in states]

    # -- round protocol ----------------------------------------------------
    def serialize(self) -> None:
        if self.round == 0:
            self._serialize_requests()
        elif self.round == 1:
            self._serialize_responses()

    def _serialize_requests(self) -> None:
        worker = self.worker
        m = self.num_workers
        if self._requests:
            uniq = np.unique(np.asarray(self._requests, dtype=np.int64))
            self._requests = []
            owners = worker.owner[uniq]
            net_msgs = 0
            for peer in range(m):
                mine = uniq[owners == peer]
                self._asked[peer] = mine
                if mine.size:
                    self.emit(peer, mine.astype(np.int32).tobytes())
                    if peer != worker.worker_id:
                        net_msgs += int(mine.size)
            self.count_net_messages(net_msgs)
        else:
            for peer in range(m):
                self._asked[peer] = self._asked[peer][:0]

    def _serialize_responses(self) -> None:
        net_msgs = 0
        for peer, vals in enumerate(self._responses_out):
            if vals is None or vals.size == 0:
                continue
            payload = self.value_codec.encode_array(vals)
            if self.echo_ids:
                # D1 ablation: prepend the echoed request ids (receiver
                # still matches positionally, so results are unchanged —
                # only the wire size grows, as in Pregel+'s reqresp)
                payload = self._echo_ids_out[peer].astype(np.int32).tobytes() + payload
            self.emit(peer, payload)
            if peer != self.worker.worker_id:
                net_msgs += int(vals.size)
            self._responses_out[peer] = None
        self._have_responses = False
        self.count_net_messages(net_msgs)

    def deserialize(self, payloads: list[tuple[int, memoryview]]) -> None:
        if self.round == 0:
            self._deserialize_requests(payloads)
        elif self.round == 1:
            self._deserialize_responses(payloads)
        self.round += 1

    def _deserialize_requests(self, payloads: list[tuple[int, memoryview]]) -> None:
        worker = self.worker
        for src, payload in payloads:
            ids = INT32.decode_array(payload).astype(np.int64)
            local = worker._local_index[ids]
            if self.respond_fn_bulk is not None:
                vals = np.asarray(
                    self.respond_fn_bulk(local), dtype=self.value_codec.dtype
                )
            else:
                v = self._vertex
                vals = np.fromiter(
                    (self.respond_fn(v._bind(int(i))) for i in local),
                    dtype=self.value_codec.dtype,
                    count=local.size,
                )
            self._responses_out[src] = vals
            if self.echo_ids:
                self._echo_ids_out[src] = ids
            self._have_responses = True

    def _deserialize_responses(self, payloads: list[tuple[int, memoryview]]) -> None:
        worker = self.worker
        got: dict[int, np.ndarray] = {src: payload for src, payload in payloads}
        keys: list[np.ndarray] = []
        vals: list[np.ndarray] = []
        for peer in range(self.num_workers):
            asked = self._asked[peer]
            if asked.size == 0:
                continue
            payload = got.get(peer)
            if payload is None:
                raise RuntimeError(
                    f"worker {worker.worker_id} asked {peer} for {asked.size} "
                    "values but received no response"
                )
            if self.echo_ids:
                # skip the redundant id echo (D1 ablation wire format)
                payload = payload[asked.size * INT32.itemsize :]
            keys.append(asked)
            vals.append(self.value_codec.decode_array(payload, asked.size))
        if keys:
            k = np.concatenate(keys)
            x = np.concatenate(vals)
            self._resp_keys = k
            self._resp_vals = x
            # one bulk pass builds the lookup; per-vertex reads are O(1)
            self._resp_map = dict(zip(k.tolist(), x.tolist()))
            # wake the vertices that asked — their answer is here
            if self._requesters:
                worker.activate_local_bulk(
                    np.unique(np.asarray(self._requesters, dtype=np.int64))
                )
        else:
            self._resp_keys = self._resp_keys[:0]
            self._resp_vals = self._resp_vals[:0]
            self._resp_map = {}
        self._requesters = []

    def again(self) -> bool:
        if self.round == 1:
            # a respond round is needed if we asked anyone or owe answers
            return self._have_responses or any(a.size for a in self._asked)
        return False
