"""Run one experiment cell and report the paper's metrics.

A *cell* is (algorithm, system/variant, dataset[, partitioned]) — one
runtime/message entry of Tables IV–VII.  ``runtime`` in our tables is the
cost-model's simulated parallel time (see
:mod:`repro.runtime.costmodel`); ``message_mb`` is real serialized
network bytes.
"""

from __future__ import annotations

import subprocess
import time
from pathlib import Path

import numpy as np

from repro.algorithms.bfs import run_bfs
from repro.algorithms.msf import run_msf
from repro.algorithms.pagerank import run_pagerank
from repro.algorithms.pointer_jumping import run_pointer_jumping
from repro.algorithms.scc import run_scc
from repro.algorithms.sssp import run_sssp
from repro.algorithms.sv import run_sv
from repro.algorithms.wcc import run_wcc
from repro.bench.datasets import load_dataset
from repro.blogel import run_wcc_blogel
from repro.graph.partition import metis_like_partition
from repro.pregel_algorithms import (
    run_msf_pregel,
    run_pagerank_pregel,
    run_pointer_jumping_pregel,
    run_scc_pregel,
    run_sssp_pregel,
    run_sv_pregel,
    run_wcc_pregel,
)

__all__ = ["run_cell", "CELLS", "BULK_PAIRS", "bulk_speedup_rows", "git_describe"]


def git_describe() -> str:
    """Identify the code that produced a benchmark artifact (commit hash,
    with ``-dirty`` when the tree has local edits); ``"unknown"`` outside
    a git checkout.  Runs git in this file's directory, not the process
    CWD — and only trusts the result if the discovered repository really
    contains this package (an installed copy inside some unrelated repo's
    tree must not inherit that repo's hash)."""
    here = Path(__file__).resolve().parent

    def _git(*argv: str):
        return subprocess.run(
            ["git", *argv],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=here,
        )

    try:
        top = _git("rev-parse", "--show-toplevel")
        if top.returncode != 0:
            return "unknown"
        root = Path(top.stdout.strip()).resolve()
        if root != here and root not in here.parents:
            return "unknown"
        out = _git("describe", "--always", "--dirty")
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"

#: (algorithm, program) -> runner(graph, **kw) returning (..., EngineResult)
CELLS = {
    ("pr", "pregel-basic"): lambda g, **kw: run_pagerank_pregel(g, mode="basic", **kw),
    ("pr", "pregel-ghost"): lambda g, **kw: run_pagerank_pregel(g, mode="ghost", **kw),
    ("pr", "channel-basic"): lambda g, **kw: run_pagerank(g, variant="basic", **kw),
    ("pr", "channel-scatter"): lambda g, **kw: run_pagerank(g, variant="scatter", **kw),
    ("pr", "channel-mirror"): lambda g, **kw: run_pagerank(g, variant="mirror", **kw),
    ("pj", "pregel-basic"): lambda g, **kw: run_pointer_jumping_pregel(g, mode="basic", **kw),
    ("pj", "pregel-reqresp"): lambda g, **kw: run_pointer_jumping_pregel(
        g, mode="reqresp", **kw
    ),
    ("pj", "channel-basic"): lambda g, **kw: run_pointer_jumping(g, variant="basic", **kw),
    ("pj", "channel-reqresp"): lambda g, **kw: run_pointer_jumping(
        g, variant="reqresp", **kw
    ),
    ("wcc", "pregel-basic"): run_wcc_pregel,
    ("wcc", "blogel"): run_wcc_blogel,
    ("wcc", "channel-basic"): lambda g, **kw: run_wcc(g, variant="basic", **kw),
    ("wcc", "channel-prop"): lambda g, **kw: run_wcc(g, variant="prop", **kw),
    ("sv", "pregel-basic"): lambda g, **kw: run_sv_pregel(g, mode="basic", **kw),
    ("sv", "pregel-reqresp"): lambda g, **kw: run_sv_pregel(g, mode="reqresp", **kw),
    ("sv", "channel-basic"): lambda g, **kw: run_sv(g, variant="basic", **kw),
    ("sv", "channel-reqresp"): lambda g, **kw: run_sv(g, variant="reqresp", **kw),
    ("sv", "channel-scatter"): lambda g, **kw: run_sv(g, variant="scatter", **kw),
    ("sv", "channel-both"): lambda g, **kw: run_sv(g, variant="both", **kw),
    ("scc", "pregel-basic"): run_scc_pregel,
    ("scc", "channel-basic"): lambda g, **kw: run_scc(g, variant="basic", **kw),
    ("scc", "channel-prop"): lambda g, **kw: run_scc(g, variant="prop", **kw),
    ("msf", "pregel-basic"): run_msf_pregel,
    ("msf", "channel-basic"): run_msf,
    ("sssp", "pregel-basic"): run_sssp_pregel,
    ("sssp", "channel-basic"): lambda g, **kw: run_sssp(g, variant="basic", **kw),
    ("sssp", "channel-prop"): lambda g, **kw: run_sssp(g, variant="prop", **kw),
    ("bfs", "channel-basic"): lambda g, **kw: run_bfs(g, variant="basic", **kw),
    # bulk (columnar compute) counterparts of the channel programs above
    ("pr", "channel-basic-bulk"): lambda g, **kw: run_pagerank(
        g, variant="basic", mode="bulk", **kw
    ),
    ("pr", "channel-scatter-bulk"): lambda g, **kw: run_pagerank(
        g, variant="scatter", mode="bulk", **kw
    ),
    ("pr", "channel-mirror-bulk"): lambda g, **kw: run_pagerank(
        g, variant="mirror", mode="bulk", **kw
    ),
    ("wcc", "channel-basic-bulk"): lambda g, **kw: run_wcc(
        g, variant="basic", mode="bulk", **kw
    ),
    ("bfs", "channel-basic-bulk"): lambda g, **kw: run_bfs(
        g, variant="basic", mode="bulk", **kw
    ),
    ("sssp", "channel-basic-bulk"): lambda g, **kw: run_sssp(
        g, variant="basic", mode="bulk", **kw
    ),
}

#: (row name, scalar cell, bulk cell, extra kwargs) pairs measured by the
#: scalar-vs-bulk speedup benchmark (BENCH_bulk.json)
BULK_PAIRS = [
    ("pr-basic", ("pr", "channel-basic"), ("pr", "channel-basic-bulk"), {"iterations": 5}),
    (
        "pr-scatter",
        ("pr", "channel-scatter"),
        ("pr", "channel-scatter-bulk"),
        {"iterations": 5},
    ),
    (
        "pr-mirror",
        ("pr", "channel-mirror"),
        ("pr", "channel-mirror-bulk"),
        {"iterations": 5},
    ),
    ("wcc", ("wcc", "channel-basic"), ("wcc", "channel-basic-bulk"), {}),
    ("bfs", ("bfs", "channel-basic"), ("bfs", "channel-basic-bulk"), {}),
    ("sssp", ("sssp", "channel-basic"), ("sssp", "channel-basic-bulk"), {}),
]

_partition_cache: dict[tuple[str, int], np.ndarray] = {}


def run_cell(
    algorithm: str,
    program: str,
    dataset: str,
    partitioned: bool = False,
    num_workers: int = 8,
    **kwargs,
) -> dict:
    """Run one table cell; returns a metrics row (dict)."""
    runner = CELLS[(algorithm, program)]
    graph = load_dataset(dataset)
    if partitioned:
        key = (dataset, num_workers)
        if key not in _partition_cache:
            _partition_cache[key] = metis_like_partition(graph, num_workers, seed=0)
        kwargs["partition"] = _partition_cache[key]
    t0 = time.perf_counter()
    out = runner(graph, num_workers=num_workers, **kwargs)
    wall = time.perf_counter() - t0
    result = out[-1]
    m = result.metrics
    return {
        "algorithm": algorithm,
        "program": program,
        "dataset": dataset + (" (P)" if partitioned else ""),
        "runtime": round(m.simulated_time, 4),
        "message_mb": round(m.total_net_bytes / 1e6, 3),
        "messages": m.total_messages,
        "supersteps": m.supersteps,
        "rounds": m.total_rounds,
        "wall_s": round(wall, 3),
    }


def bulk_speedup_rows(
    dataset: str = "bulk-100k", num_workers: int = 8, pairs=None, seed: int = 0
) -> list[dict]:
    """Run every scalar/bulk program pair on ``dataset`` and report the
    wall-time speedup of the columnar path, plus the traffic equality the
    parity tests enforce (same supersteps, same messages, same bytes).

    ``seed`` fixes the hash partition used by every run, so a rerun with
    the same arguments measures the exact same work distribution.
    """
    from repro.graph.partition import hash_partition

    graph = load_dataset(dataset)
    partition = hash_partition(graph.num_vertices, num_workers, seed=seed)
    rows = []
    for name, scalar_cell, bulk_cell, extra in pairs or BULK_PAIRS:
        extra = dict(extra, partition=partition)
        scalar = run_cell(*scalar_cell, dataset, num_workers=num_workers, **extra)
        bulk = run_cell(*bulk_cell, dataset, num_workers=num_workers, **extra)
        rows.append(
            {
                "algorithm": name,
                "dataset": dataset,
                "scalar_wall_s": scalar["wall_s"],
                "bulk_wall_s": bulk["wall_s"],
                "speedup": round(scalar["wall_s"] / max(bulk["wall_s"], 1e-9), 2),
                "supersteps": scalar["supersteps"],
                "traffic_identical": all(
                    scalar[k] == bulk[k]
                    for k in ("supersteps", "messages", "message_mb", "rounds")
                ),
            }
        )
    return rows
