"""Incremental WCC: hash-min with component-merge wakeup.

Old labels are converged hash-min labels (the min vertex id of each weak
component), which doubles as a component id map — that is what makes the
deletion story cheap to plan centrally:

* **insertions** can only merge components; waking the two endpoints and
  letting the usual hash-min wave run re-labels the losing component.
* **deletions** can split a component, and hash-min cannot raise a label,
  so a component a deletion *actually disconnected* is *reset* (labels
  back to ``v``) and re-run from scratch — a cold run confined to those
  components.  Most deletions on well-connected graphs disconnect
  nothing, so the planner first probes each deleted edge with a bounded
  BFS on the mutated graph: finding the far endpoint within
  ``probe_cap`` visits proves the component survived intact and no reset
  is needed.  An exhausted probe is treated (conservatively) as a split.
  Untouched components are never activated.

The refresh program is the cold :class:`~repro.algorithms.wcc.WCCBasicBulk`
with one change: in superstep 1 it broadcasts its *warm* label instead of
its own id.  Since labels are exact ints under a MIN combine, the final
labels are bit-identical to a cold full run on the mutated graph.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.wcc import run_wcc
from repro.core import BulkVertexProgram, CombinedMessage, MIN_I64, ProgramSpec
from repro.graph.graph import Graph
from repro.streaming.delta import ApplyStats
from repro.streaming.plan import RefreshPlan, StreamAlgorithm

__all__ = ["WCCIncrementalBulk", "WCCStream"]


class WCCIncrementalBulk(BulkVertexProgram):
    """Warm-started hash-min over the ``"both"``-direction adjacency.

    ``warm_labels`` (class attribute, baked in by the planner) holds the
    label each vertex starts from: previous-epoch labels, with reset
    components set back to ``label[v] = v``.  With ``warm_labels =
    arange(n)`` and all vertices seeded this is exactly the cold
    :class:`~repro.algorithms.wcc.WCCBasicBulk`.
    """

    warm_labels: np.ndarray  # (n,) int64, set by the planner

    def __init__(self, worker):
        super().__init__(worker)
        self.msg = CombinedMessage(worker, MIN_I64)
        self.label = self.warm_labels[worker.local_ids].copy()

    def compute_bulk(self, active: np.ndarray) -> None:
        worker = self.worker
        adj = worker.local_adjacency("both")
        if self.step_num == 1:
            senders = active
            new = self.label[active]
        else:
            inbox, _ = self.msg.get_messages()
            m = inbox[active]
            improved = m < self.label[active]
            senders = active[improved]
            new = m[improved]
            self.label[senders] = new
        if senders.size:
            dsts = adj.gather(senders)
            self.msg.send_messages(dsts, np.repeat(new, adj.degrees[senders]))
        worker.halt_bulk(active)

    def finalize(self) -> dict:
        return {int(g): int(self.label[i]) for i, g in enumerate(self.worker.local_ids)}


def still_connected(graph: Graph, u: int, v: int, cap: int) -> bool:
    """Bounded undirected BFS: ``True`` proves ``u`` and ``v`` remain
    weakly connected; ``False`` after ``cap`` visits proves nothing (the
    caller must treat it as a possible split)."""
    if u == v:
        return True
    seen = {u}
    frontier = [u]
    while frontier and len(seen) < cap:
        nxt = []
        for x in frontier:
            nbrs = (
                graph.neighbors(x)
                if not graph.directed
                else np.concatenate([graph.neighbors(x), graph.in_neighbors(x)])
            )
            for y in nbrs.tolist():
                if y == v:
                    return True
                if y not in seen:
                    seen.add(y)
                    nxt.append(y)
                    if len(seen) >= cap:
                        break
        frontier = nxt
    return False


class WCCStream(StreamAlgorithm):
    """``probe_cap`` bounds the per-deleted-edge reconnection probe
    (0 disables probing — every touched component resets)."""

    name = "wcc"

    def __init__(self, probe_cap: int = 1024):
        self.probe_cap = probe_cap

    def plan(
        self,
        old_graph: Graph,
        new_graph: Graph,
        stats: ApplyStats | None,
        state: dict | None,
        refresh: str,
    ) -> RefreshPlan:
        n_new = new_graph.num_vertices
        if refresh == "full" or state is None or stats is None:
            warm = np.arange(n_new, dtype=np.int64)
            plan_seeds, affected, mode = None, n_new, "full"
        else:
            labels = state["labels"]
            n_old = labels.size
            warm = np.concatenate(
                [labels, np.arange(n_old, n_new, dtype=np.int64)]
            )
            seed = np.zeros(n_new, dtype=bool)
            if stats.del_src.size:
                # probe each deleted edge; reset only components whose
                # endpoints could not be re-connected (possible split)
                lo = np.minimum(stats.del_src, stats.del_dst)
                hi = np.maximum(stats.del_src, stats.del_dst)
                pairs = np.unique(np.stack([lo, hi], axis=1), axis=0)
                split = [
                    (int(u), int(v))
                    for u, v in pairs
                    if not still_connected(new_graph, int(u), int(v), self.probe_cap)
                ]
                if split:
                    comp_ids = np.unique(
                        np.array([labels[x] for uv in split for x in uv])
                    )
                    reset = np.isin(labels, comp_ids)
                    idx = np.flatnonzero(reset)
                    warm[idx] = idx
                    seed[idx] = True
            # component-merge wakeup: insertion endpoints re-announce labels
            seed[stats.ins_src] = True
            seed[stats.ins_dst] = True
            plan_seeds = np.flatnonzero(seed)
            affected, mode = int(plan_seeds.size), "incremental"

        # a ProgramSpec (rather than an anonymous type(...)) so the plan
        # can cross into a persistent worker pool's live processes
        program = ProgramSpec(WCCIncrementalBulk, {"warm_labels": warm})
        return RefreshPlan(
            program_factory=program, seeds=plan_seeds, affected=affected, mode=mode
        )

    def collect(self, engine, result) -> dict:
        labels = np.zeros(engine.graph.num_vertices, dtype=np.int64)
        for v, lab in result.data.items():
            labels[v] = lab
        return {"labels": labels}

    def cold_run(self, graph: Graph, num_workers: int, partition: np.ndarray):
        return run_wcc(
            graph,
            variant="basic",
            mode="bulk",
            num_workers=num_workers,
            partition=partition,
        )
