"""The S-V algorithm on the Pregel+ baseline.

S-V mixes four message purposes (pointer requests, replies, neighborhood
broadcasts, min-updates), so with one monolithic message type every value
must carry a tag — ``(tag:int32, value:int32)`` — and no global combiner
is legal (min-combining the broadcast would corrupt the requests).  This
is exactly the Section II-B problem: wider messages *and* no combining.

``mode="basic"`` runs the 4-superstep round; ``mode="reqresp"`` uses
Pregel+'s request-respond paradigm for the grandparent read (3-superstep
round, ``(id, tagged-value)`` response echoes).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._common import gather
from repro.core.combiner import SUM_I64
from repro.graph.graph import Graph
from repro.pregel import PregelPlusEngine, PregelProgram
from repro.runtime.serialization import INT32, struct_codec

__all__ = ["SVPregelBasic", "SVPregelReqResp", "run_sv_pregel"]

#: the monolithic tagged message type
TAGGED = struct_codec([("tag", INT32), ("val", INT32)], name="sv_tagged")

TAG_REQ, TAG_REPLY, TAG_BCAST, TAG_UPD = range(4)

_I32_MAX = int(np.iinfo(np.int32).max)


class _SVPregelBase(PregelProgram):
    message_codec = TAGGED
    combiner = None  # heterogeneous messages: no global combiner is legal
    aggregator_combiner = SUM_I64

    cycle = 4

    def __init__(self, worker):
        super().__init__(worker)
        n = worker.num_local
        self.D = np.zeros(n, dtype=np.int64)
        self.tmin = np.full(n, _I32_MAX, dtype=np.int64)
        self.changed = np.zeros(n, dtype=np.int8)

    def _phase(self) -> int:
        return (self.step_num - 1) % self.cycle + 1

    def _broadcast_pointer(self, v) -> None:
        d = int(self.D[v.local])
        for e in v.edges:
            v.send_message(int(e), (TAG_BCAST, d))

    def _merge_or_jump(self, v, gp: int, t: int) -> None:
        i = v.local
        d = int(self.D[i])
        if gp == d:
            if t < d:
                v.send_message(d, (TAG_UPD, t))
        else:
            self.D[i] = gp
            self.changed[i] = 1

    def _apply_updates(self, v, msgs) -> None:
        i = v.local
        delta = int(self.changed[i])
        self.changed[i] = 0
        m = min((val for tag, val in msgs if tag == TAG_UPD), default=_I32_MAX)
        if m < self.D[i]:
            self.D[i] = m
            delta += 1
        self.aggregate(delta)

    def finalize(self) -> dict:
        return {int(g): int(self.D[i]) for i, g in enumerate(self.worker.local_ids)}


class SVPregelBasic(_SVPregelBase):
    """4-superstep S-V round with tagged messages."""

    cycle = 4

    def compute(self, v, messages) -> None:
        i = v.local
        phase = self._phase()
        msgs = messages if messages else []
        if phase == 1:
            if self.step_num == 1:
                self.D[i] = v.id
            elif self.agg_result == 0:
                v.vote_to_halt()
                return
            v.send_message(int(self.D[i]), (TAG_REQ, v.id))
            self._broadcast_pointer(v)
        elif phase == 2:
            d = int(self.D[i])
            t = _I32_MAX
            for tag, val in msgs:
                if tag == TAG_REQ:
                    v.send_message(int(val), (TAG_REPLY, d))
                elif tag == TAG_BCAST and val < t:
                    t = val
            self.tmin[i] = t
        elif phase == 3:
            gp = next(val for tag, val in msgs if tag == TAG_REPLY)
            self._merge_or_jump(v, int(gp), int(self.tmin[i]))
        else:
            self._apply_updates(v, msgs)


class SVPregelReqResp(_SVPregelBase):
    """3-superstep S-V round using Pregel+'s reqresp mode for the
    grandparent read."""

    cycle = 3

    def respond_value(self, local_idx: int):
        return (TAG_REPLY, int(self.D[local_idx]))

    def compute(self, v, messages) -> None:
        i = v.local
        phase = self._phase()
        msgs = messages if messages else []
        if phase == 1:
            if self.step_num == 1:
                self.D[i] = v.id
            elif self.agg_result == 0:
                v.vote_to_halt()
                return
            v.request(int(self.D[i]))
            self._broadcast_pointer(v)
        elif phase == 2:
            gp = int(v.get_resp(int(self.D[i]))[1])
            t = min((val for tag, val in msgs if tag == TAG_BCAST), default=_I32_MAX)
            self._merge_or_jump(v, gp, int(t))
        else:
            self._apply_updates(v, msgs)


def run_sv_pregel(graph: Graph, mode: str = "basic", **engine_kwargs):
    """Run Pregel+ S-V; ``mode`` is ``"basic"`` or ``"reqresp"``.
    Returns ``(labels, EngineResult)``."""
    program = {"basic": SVPregelBasic, "reqresp": SVPregelReqResp}[mode]
    engine = PregelPlusEngine(graph, program, mode=mode, **engine_kwargs)
    result = engine.run()
    return gather(result, graph.num_vertices), result
