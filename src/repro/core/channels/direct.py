"""``DirectMessage``: plain point-to-point message passing (Table I).

Wire format per peer and round: an ``int32`` destination array followed by
a value array (the payload length plus the fixed codec sizes recover the
count, so no explicit header is needed).  The receiver groups messages by
destination vertex with one argsort — this is the "message iterator"
the paper credits for DirectMessage being faster than Pregel+'s nested
vectors.
"""

from __future__ import annotations

import numpy as np

from repro.core.channels._records import RecordChannel
from repro.core.worker import Worker
from repro.core.vertex import Vertex
from repro.runtime.serialization import Codec, INT32, INT64

__all__ = ["DirectMessage"]


class DirectMessage(RecordChannel):
    """Send arbitrary values to arbitrary vertices; read them all next
    superstep via :meth:`get_iterator`.

    The send path (scalar and vectorized) lives in :class:`RecordChannel`.

    Parameters
    ----------
    worker:
        The owning worker (the paper's ``Worker<VertexT> *w``).
    value_codec:
        Wire codec of message values (default ``int64``).
    """

    def __init__(self, worker: Worker, value_codec: Codec = INT64) -> None:
        super().__init__(worker, value_codec)
        # receive side: messages grouped by local vertex
        self._recv_indptr = np.zeros(worker.num_local + 1, dtype=np.int64)
        self._recv_vals = np.empty(0, dtype=value_codec.dtype)

    # -- receiving (next superstep's compute) --------------------------------
    def get_messages(self) -> tuple[np.ndarray, np.ndarray]:
        """``(indptr, values)`` views of the whole inbox in CSR form:
        messages for local vertex ``i`` are ``values[indptr[i]:indptr[i+1]]``.
        The bulk analogue of :meth:`get_iterator`; treat as read-only."""
        return self._recv_indptr, self._recv_vals

    def get_iterator(self, v: Vertex) -> np.ndarray:
        """All message values delivered to ``v`` this superstep."""
        vals = self._recv_vals
        if vals.size == 0:  # fast path: nothing arrived on this channel
            return vals
        lo, hi = self._recv_indptr[v.local], self._recv_indptr[v.local + 1]
        return vals[lo:hi]

    def has_messages(self, v: Vertex) -> bool:
        return bool(self._recv_indptr[v.local + 1] > self._recv_indptr[v.local])

    # -- checkpointing -------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "recv_indptr": self._recv_indptr.copy(),
            "recv_vals": self._recv_vals.copy(),
        }

    def restore(self, state: dict) -> None:
        self._recv_indptr = state["recv_indptr"].copy()
        self._recv_vals = state["recv_vals"].copy()

    def migrate_states(self, states: list[dict], ctx) -> list[dict]:
        # expand each CSR inbox to (global vertex, value) rows, route by
        # the new owner, regroup per receiver; every vertex's inbox lived
        # on exactly one old worker, so its per-vertex value order (the
        # only order get_iterator exposes) is preserved bit-identically
        gids = np.concatenate(
            [
                np.repeat(ctx.old_locals[w], np.diff(s["recv_indptr"]))
                for w, s in enumerate(states)
            ]
        )
        vals = np.concatenate([s["recv_vals"] for s in states])
        out = []
        for w, gids_w, (vals_w,) in ctx.route(gids, vals):
            local = ctx.localize(w, gids_w)
            order = np.argsort(local, kind="stable")
            num_local = ctx.new_locals[w].size
            indptr = np.zeros(num_local + 1, dtype=np.int64)
            counts = np.bincount(local[order], minlength=num_local)
            np.cumsum(counts, out=indptr[1:])
            out.append({"recv_indptr": indptr, "recv_vals": vals_w[order]})
        return out

    # -- round protocol (serialize inherited from RecordChannel) ------------
    def deserialize(self, payloads: list[tuple[int, memoryview]]) -> None:
        self.round += 1
        worker = self.worker
        itemsize = INT32.itemsize + self.value_codec.itemsize
        all_dst: list[np.ndarray] = []
        all_val: list[np.ndarray] = []
        for _src, payload in payloads:
            count = len(payload) // itemsize
            all_dst.append(INT32.decode_array(payload[: count * INT32.itemsize]))
            all_val.append(
                self.value_codec.decode_array(payload[count * INT32.itemsize :], count)
            )
        if not all_dst:
            self._recv_indptr[:] = 0
            self._recv_vals = self._recv_vals[:0]
            return
        dst = np.concatenate(all_dst).astype(np.int64)
        vals = np.concatenate(all_val)
        local = worker._local_index[dst]
        order = np.argsort(local, kind="stable")
        local_sorted = local[order]
        self._recv_vals = vals[order]
        counts = np.bincount(local_sorted, minlength=worker.num_local)
        self._recv_indptr[0] = 0
        np.cumsum(counts, out=self._recv_indptr[1:])
        worker.activate_local_bulk(np.unique(local_sorted))
