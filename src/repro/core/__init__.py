"""The paper's primary contribution: the channel-based vertex-centric engine.

Public surface:

* :class:`~repro.core.engine.ChannelEngine` — runs a vertex program over a
  partitioned graph with per-superstep channel exchange rounds (Fig. 4).
* :class:`~repro.core.worker.Worker` / :class:`~repro.core.vertex.Vertex` —
  the per-worker execution context and the per-vertex handle.
* :class:`~repro.core.program.VertexProgram` — user programs subclass this,
  creating channels in ``__init__`` and implementing ``compute``.
* Standard channels: :class:`DirectMessage`, :class:`CombinedMessage`,
  :class:`Aggregator` (Table I).
* Optimized channels: :class:`ScatterCombine`, :class:`RequestRespond`,
  :class:`Propagation` (Table II).
"""

from repro.core.combiner import (
    Combiner,
    make_combiner,
    SUM_F64,
    SUM_I64,
    SUM_I32,
    MIN_F64,
    MIN_I64,
    MIN_I32,
    MAX_F64,
    MAX_I64,
    MAX_I32,
)
from repro.core.adjacency import LocalCSR
from repro.core.vertex import Vertex
from repro.core.channel import Channel
from repro.core.program import VertexProgram, BulkVertexProgram, ProgramSpec
from repro.core.worker import Worker
from repro.core.engine import ChannelEngine, EngineResult
from repro.core.recovery import FailureSchedule, FrameLog
from repro.core.channels.direct import DirectMessage
from repro.core.channels.combined import CombinedMessage
from repro.core.channels.aggregator import Aggregator
from repro.core.channels.scatter_combine import ScatterCombine
from repro.core.channels.request_respond import RequestRespond
from repro.core.channels.propagation import Propagation
from repro.core.channels.mirrored_scatter import MirroredScatter

__all__ = [
    "Combiner",
    "make_combiner",
    "SUM_F64",
    "SUM_I64",
    "SUM_I32",
    "MIN_F64",
    "MIN_I64",
    "MIN_I32",
    "MAX_F64",
    "MAX_I64",
    "MAX_I32",
    "Vertex",
    "Channel",
    "VertexProgram",
    "BulkVertexProgram",
    "ProgramSpec",
    "LocalCSR",
    "Worker",
    "ChannelEngine",
    "EngineResult",
    "FailureSchedule",
    "FrameLog",
    "DirectMessage",
    "CombinedMessage",
    "Aggregator",
    "ScatterCombine",
    "RequestRespond",
    "Propagation",
    "MirroredScatter",
]
