"""``DeltaGraph``: a mutable overlay above the immutable CSR ``Graph``.

The base graph stays frozen; each applied :class:`MutationBatch` lands in
the overlay as (a) a deletion mask over the base's arcs and (b) appended
extra arcs.  Point queries (``neighbors``, ``out_degree``, ``has_edge``)
are answered straight from the overlay; the engine-facing
:meth:`DeltaGraph.view` materializes a fresh CSR :class:`Graph` of the
current logical state (cached until the next ``apply``).

Compaction folds the overlay into a new base CSR.  The overlay keeps
``apply`` cheap — O(batch + overlay) instead of O(E) — but point-query
and re-materialization cost grows with the overlay, so
:meth:`maybe_compact` rebuilds once the overlay exceeds
``compact_threshold`` × base arcs (the classic LSM-style trade).

All mutations are arc-level internally: undirected batches are
symmetrized on entry exactly like the ``Graph`` constructor, so every
query and the materialized view agree with a from-scratch build.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.streaming.batch import MutationBatch

__all__ = ["DeltaGraph", "ApplyStats"]


@dataclass(frozen=True)
class ApplyStats:
    """Arc-level record of one applied batch (after symmetrization),
    consumed by the incremental-refresh planners.

    ``del_weights`` carries the weights the deleted arcs HAD — the SSSP
    invalidation pass needs them after the arcs are gone.
    """

    n_old: int
    n_new: int
    ins_src: np.ndarray
    ins_dst: np.ndarray
    ins_weights: np.ndarray | None
    del_src: np.ndarray
    del_dst: np.ndarray
    del_weights: np.ndarray | None
    added_vertices: int
    deleted_vertices: np.ndarray

    @property
    def vertex_set_changed(self) -> bool:
        return self.n_new != self.n_old

    @property
    def num_arcs_changed(self) -> int:
        return int(self.ins_src.size + self.del_src.size)


class DeltaGraph:
    """Mutable logical graph = immutable base CSR + overlay."""

    def __init__(self, base: Graph, compact_threshold: float = 0.25) -> None:
        if compact_threshold <= 0:
            raise ValueError("compact_threshold must be positive")
        self.compact_threshold = float(compact_threshold)
        self.num_compactions = 0
        self.num_batches = 0
        self._set_base(base)

    def _set_base(self, base: Graph) -> None:
        self.base = base
        src, dst = base.edge_array()
        self._base_src = src
        self._base_dst = dst
        self._base_w = None if base.weights is None else base.weights.copy()
        self._deleted = np.zeros(src.size, dtype=bool)
        self._extra_src = np.empty(0, dtype=np.int64)
        self._extra_dst = np.empty(0, dtype=np.int64)
        self._extra_w = (
            None if base.weights is None else np.empty(0, dtype=np.float64)
        )
        self._added_vertices = 0
        self._view: Graph | None = base

    # -- basic properties --------------------------------------------------
    @property
    def directed(self) -> bool:
        return self.base.directed

    @property
    def weighted(self) -> bool:
        return self.base.weights is not None

    @property
    def num_vertices(self) -> int:
        return self.base.num_vertices + self._added_vertices

    @property
    def num_arcs(self) -> int:
        """Live stored arcs (undirected edges count twice)."""
        return int(
            self._base_src.size - np.count_nonzero(self._deleted) + self._extra_src.size
        )

    @property
    def overlay_arcs(self) -> int:
        """Overlay weight: tombstoned base arcs plus appended extras."""
        return int(np.count_nonzero(self._deleted) + self._extra_src.size)

    # -- point queries (overlay, no materialization) -----------------------
    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbors of ``v`` in the current logical graph: surviving
        base row first, then extras in insertion order."""
        parts = []
        if v < self.base.num_vertices:
            lo, hi = self.base.indptr[v], self.base.indptr[v + 1]
            keep = ~self._deleted[lo:hi]
            parts.append(self.base.indices[lo:hi][keep])
        if self._extra_src.size:
            parts.append(self._extra_dst[self._extra_src == v])
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts) if len(parts) > 1 else parts[0]

    def out_degree(self, v: int) -> int:
        return int(self.neighbors(v).size)

    def has_edge(self, u: int, v: int) -> bool:
        return bool(np.any(self.neighbors(u) == v))

    # -- mutation ----------------------------------------------------------
    def apply(self, batch: MutationBatch) -> ApplyStats:
        """Apply one batch to the overlay; returns the arc-level
        :class:`ApplyStats`.  Raises ``ValueError`` (leaving the overlay
        untouched) when the batch is inconsistent with the current graph:
        out-of-range endpoints, deleting a missing edge, weight mismatch."""
        n_old = self.num_vertices
        n_new = n_old + batch.add_vertices

        # -- validate against the current logical graph -------------------
        if batch.delete_vertices.size and batch.delete_vertices.max() >= n_old:
            raise ValueError("delete_vertices references an unknown vertex")
        for arr in (batch.insert_src, batch.insert_dst):
            if arr.size and arr.max() >= n_new:
                raise ValueError(
                    "insertion endpoint out of range (even counting add_vertices)"
                )
        for arr in (batch.delete_src, batch.delete_dst):
            if arr.size and arr.max() >= n_old:
                raise ValueError("deletion endpoint out of range")
        if self.weighted and batch.num_insertions and batch.insert_weights is None:
            raise ValueError("graph is weighted; insertions need insert_weights")
        if not self.weighted and batch.insert_weights is not None:
            raise ValueError("graph is unweighted; insertions must not carry weights")

        # -- symmetrize to arc level (mirrors the Graph constructor) -------
        ins_s, ins_d, ins_w = batch.insert_src, batch.insert_dst, batch.insert_weights
        del_s, del_d = batch.delete_src, batch.delete_dst
        if not self.directed:
            loop = ins_s == ins_d
            ins_s, ins_d, ins_w = (
                np.concatenate([ins_s, ins_d[~loop]]),
                np.concatenate([ins_d, ins_s[~loop]]),
                None if ins_w is None else np.concatenate([ins_w, ins_w[~loop]]),
            )
            dloop = del_s == del_d
            del_s, del_d = (
                np.concatenate([del_s, del_d[~dloop]]),
                np.concatenate([del_d, del_s[~dloop]]),
            )

        # -- resolve deletions to concrete arcs ----------------------------
        key = np.int64(n_new)
        if ins_s.size and del_s.size:
            # batch.validate() checks ordered pairs; after symmetrization
            # an undirected edge named in opposite orders collides too
            both = np.isin(ins_s * key + ins_d, del_s * key + del_d)
            if both.any():
                clash = sorted(zip(ins_s[both].tolist(), ins_d[both].tolist()))
                raise ValueError(
                    f"edges appear in both insertions and deletions: {clash[:5]}"
                )
        live_base = ~self._deleted
        base_keys = self._base_src * key + self._base_dst
        extra_keys = self._extra_src * key + self._extra_dst
        del_keys = del_s * key + del_d
        if del_keys.size:
            present = np.isin(del_keys, base_keys[live_base]) | np.isin(
                del_keys, extra_keys
            )
            if not present.all():
                missing = sorted(
                    zip(del_s[~present].tolist(), del_d[~present].tolist())
                )
                raise ValueError(f"deleting non-existent edges: {missing[:5]}")

        dead_v = batch.delete_vertices
        base_hit = np.zeros(self._base_src.size, dtype=bool)
        extra_hit = np.zeros(self._extra_src.size, dtype=bool)
        if del_keys.size:
            base_hit |= live_base & np.isin(base_keys, del_keys)
            extra_hit |= np.isin(extra_keys, del_keys)
        if dead_v.size:
            base_hit |= live_base & (
                np.isin(self._base_src, dead_v) | np.isin(self._base_dst, dead_v)
            )
            extra_hit |= np.isin(self._extra_src, dead_v) | np.isin(
                self._extra_dst, dead_v
            )

        # record what actually went away (with weights, for the planners)
        gone_src = np.concatenate([self._base_src[base_hit], self._extra_src[extra_hit]])
        gone_dst = np.concatenate([self._base_dst[base_hit], self._extra_dst[extra_hit]])
        gone_w = (
            None
            if self._base_w is None
            else np.concatenate([self._base_w[base_hit], self._extra_w[extra_hit]])
        )

        # -- commit --------------------------------------------------------
        self._deleted |= base_hit
        if extra_hit.any():
            keep = ~extra_hit
            self._extra_src = self._extra_src[keep]
            self._extra_dst = self._extra_dst[keep]
            if self._extra_w is not None:
                self._extra_w = self._extra_w[keep]
        if ins_s.size:
            self._extra_src = np.concatenate([self._extra_src, ins_s])
            self._extra_dst = np.concatenate([self._extra_dst, ins_d])
            if self._extra_w is not None:
                self._extra_w = np.concatenate([self._extra_w, ins_w])
        self._added_vertices += batch.add_vertices
        self.num_batches += 1
        self._view = None

        return ApplyStats(
            n_old=n_old,
            n_new=n_new,
            ins_src=ins_s,
            ins_dst=ins_d,
            ins_weights=ins_w,
            del_src=gone_src,
            del_dst=gone_dst,
            del_weights=gone_w,
            added_vertices=batch.add_vertices,
            deleted_vertices=dead_v,
        )

    # -- materialization / compaction --------------------------------------
    def view(self) -> Graph:
        """CSR :class:`Graph` of the current logical state (cached until
        the next :meth:`apply`)."""
        if self._view is None:
            keep = ~self._deleted
            src = np.concatenate([self._base_src[keep], self._extra_src])
            dst = np.concatenate([self._base_dst[keep], self._extra_dst])
            w = (
                None
                if self._base_w is None
                else np.concatenate([self._base_w[keep], self._extra_w])
            )
            # arcs are already symmetrized; build directed, restore the flag
            g = Graph(self.num_vertices, src, dst, weights=w, directed=True)
            g.directed = self.base.directed
            self._view = g
        return self._view

    def compact(self) -> Graph:
        """Fold the overlay into a fresh base CSR; the overlay empties."""
        fresh = self.view()
        self._set_base(fresh)
        self.num_compactions += 1
        return fresh

    def maybe_compact(self) -> bool:
        """Compact when the overlay outgrew ``compact_threshold`` × base."""
        if self.overlay_arcs > self.compact_threshold * max(self.base.num_edges, 1):
            self.compact()
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"DeltaGraph(|V|={self.num_vertices}, arcs={self.num_arcs}, "
            f"overlay={self.overlay_arcs}, compactions={self.num_compactions})"
        )
