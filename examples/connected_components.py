"""Composing optimizations: the S-V algorithm with every channel combo.

The paper's flagship example (Section III-C, Table VI): the S-V
connected-components algorithm has three communication patterns at once —
a grandparent read, a neighborhood minimum, and congested root updates —
and each maps to its own channel.  This script runs all four channel
combinations plus the Pregel+ reqresp baseline on a social-network-like
graph and prints the Table VI comparison.

Run:  python examples/connected_components.py
"""

from repro.algorithms.sv import run_sv
from repro.algorithms.wcc import run_wcc
from repro.graph import rmat
from repro.pregel_algorithms.sv import run_sv_pregel


def main():
    graph = rmat(12, edge_factor=10, seed=42, directed=False)
    print(f"input: {graph}\n")
    print(f"{'program':28s} {'sim time':>9s} {'net MB':>8s} {'supersteps':>10s}")

    rows = []
    labels_ref = None
    for name, run in [
        ("pregel+ (reqresp)", lambda: run_sv_pregel(graph, mode="reqresp", num_workers=8)),
        ("channel (basic)", lambda: run_sv(graph, variant="basic", num_workers=8)),
        ("channel (request-respond)", lambda: run_sv(graph, variant="reqresp", num_workers=8)),
        ("channel (scatter-combine)", lambda: run_sv(graph, variant="scatter", num_workers=8)),
        ("channel (both)", lambda: run_sv(graph, variant="both", num_workers=8)),
    ]:
        labels, result = run()
        if labels_ref is None:
            labels_ref = labels
        assert (labels == labels_ref).all(), "all variants must agree"
        m = result.metrics
        rows.append((name, m.simulated_time, m.total_net_bytes / 1e6, m.supersteps))
        print(f"{name:28s} {m.simulated_time:9.4f} {m.total_net_bytes / 1e6:8.2f} {m.supersteps:10d}")

    best = min(rows[1:], key=lambda r: r[1])
    prior = rows[0]
    print(
        f"\ncomposed channels vs best prior system: "
        f"{prior[1] / best[1]:.2f}x faster, "
        f"{prior[2] / best[2]:.2f}x fewer bytes "
        f"(paper reports 2.20x on its cluster)"
    )

    # where the traffic goes: the per-channel breakdown of the composed run
    _, res = run_sv(graph, variant="both", num_workers=8)
    print("\nper-channel traffic in the composed version:")
    for label, t in res.metrics.channel_breakdown().items():
        print(
            f"  {label:20s} net {t['net_bytes'] / 1e3:8.1f} KB   "
            f"messages {t['messages']:7d}"
        )

    n_components = len(set(labels_ref.tolist()))
    print(f"components found: {n_components}")

    # sanity: the HCC propagation channel finds the same components
    wcc_labels, _ = run_wcc(graph, variant="prop", num_workers=8)
    assert (wcc_labels == labels_ref).all()
    print("cross-check vs propagation-channel WCC: identical labels")


if __name__ == "__main__":
    main()
