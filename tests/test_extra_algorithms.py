"""Tests for the extended algorithm library: BFS, triangle counting,
k-core, Luby MIS, and label propagation."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algorithms.bfs import UNREACHED, run_bfs
from repro.algorithms.kcore import h_index, run_kcore
from repro.algorithms.lpa import run_lpa
from repro.algorithms.mis import run_mis
from repro.algorithms.triangles import run_triangles
from repro.graph import complete, grid_road, rmat, star
from repro.graph.graph import Graph
from helpers import line_graph, two_triangles


@pytest.fixture(scope="module")
def social():
    return rmat(8, edge_factor=3, seed=9, directed=False)


def nx_graph(g):
    import networkx as nx

    G = nx.Graph() if not g.directed else nx.DiGraph()
    G.add_nodes_from(range(g.num_vertices))
    s, d = g.edge_array()
    G.add_edges_from(zip(s.tolist(), d.tolist()))
    return G


class TestBFS:
    @pytest.mark.parametrize("variant", ["basic", "prop"])
    def test_matches_networkx(self, social, variant):
        import networkx as nx

        src = int(social.out_degrees.argmax())
        levels, _ = run_bfs(social, source=src, variant=variant, num_workers=4)
        sp = nx.single_source_shortest_path_length(nx_graph(social), src)
        for u in range(social.num_vertices):
            assert levels[u] == sp.get(u, UNREACHED)

    def test_line(self):
        levels, _ = run_bfs(line_graph(6), source=2, num_workers=2)
        assert levels.tolist() == [2, 1, 0, 1, 2, 3]

    def test_directed_respects_direction(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)], directed=True)
        levels, _ = run_bfs(g, source=1, num_workers=2)
        assert levels[0] == UNREACHED
        assert levels.tolist()[1:] == [0, 1]

    def test_prop_single_superstep(self):
        g = line_graph(100)
        _, basic = run_bfs(g, source=0, variant="basic", num_workers=4)
        _, prop = run_bfs(g, source=0, variant="prop", num_workers=4)
        assert prop.supersteps == 2
        assert basic.supersteps == 101


class TestTriangles:
    def test_matches_networkx(self, social):
        import networkx as nx

        count, _ = run_triangles(social, num_workers=4)
        assert count == sum(nx.triangles(nx_graph(social)).values()) // 3

    def test_triangle_free(self):
        assert run_triangles(line_graph(10), num_workers=2)[0] == 0
        assert run_triangles(star(10), num_workers=2)[0] == 0

    def test_two_triangles(self):
        assert run_triangles(two_triangles(), num_workers=3)[0] == 2

    def test_complete_graph(self):
        n = 8
        expected = n * (n - 1) * (n - 2) // 6
        assert run_triangles(complete(n), num_workers=3)[0] == expected

    def test_rejects_directed(self):
        with pytest.raises(ValueError):
            run_triangles(Graph.from_edges(2, [(0, 1)], directed=True))

    def test_count_is_worker_invariant(self, social):
        c1, _ = run_triangles(social, num_workers=1)
        c5, _ = run_triangles(social, num_workers=5)
        assert c1 == c5


class TestHIndex:
    def test_examples(self):
        assert h_index(np.array([3, 3, 3])) == 3
        assert h_index(np.array([5, 1, 1])) == 1
        assert h_index(np.array([4, 4, 2, 2])) == 2
        assert h_index(np.array([], dtype=np.int64)) == 0
        assert h_index(np.array([0, 0])) == 0

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=40))
    def test_definition(self, values):
        arr = np.asarray(values, dtype=np.int64)
        h = h_index(arr)
        assert (arr >= h).sum() >= h
        assert (arr >= h + 1).sum() < h + 1


class TestKCore:
    def test_matches_networkx(self, social):
        import networkx as nx

        core, _ = run_kcore(social, num_workers=4)
        expected = nx.core_number(nx_graph(social))
        for u in range(social.num_vertices):
            assert core[u] == expected[u]

    def test_clique_plus_tail(self):
        # K4 on {0..3} with a tail 3-4-5
        edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5)]
        g = Graph.from_edges(6, edges, directed=False)
        core, _ = run_kcore(g, num_workers=2)
        assert core.tolist() == [3, 3, 3, 3, 1, 1]

    def test_isolated(self):
        g = Graph.from_edges(3, [(0, 1)], directed=False)
        core, _ = run_kcore(g, num_workers=2)
        assert core.tolist() == [1, 1, 0]

    def test_road_network(self):
        import networkx as nx

        g = grid_road(15, 15, seed=1, weighted=False)
        core, _ = run_kcore(g, num_workers=4)
        expected = nx.core_number(nx_graph(g))
        assert all(core[u] == expected[u] for u in range(g.num_vertices))


class TestMIS:
    def _check(self, g, in_set):
        members = set(np.flatnonzero(in_set).tolist())
        for v in range(g.num_vertices):
            nbrs = set(g.neighbors(v).tolist()) - {v}
            if v in members:
                assert not (nbrs & members), "set is not independent"
            else:
                assert nbrs & members, "set is not maximal"

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_independent_and_maximal(self, social, seed):
        in_set, _ = run_mis(social, seed=seed, num_workers=4)
        self._check(social, in_set)

    def test_star(self):
        g = star(12)
        in_set, _ = run_mis(g, num_workers=3)
        self._check(g, in_set)
        # either the hub alone or all the leaves
        assert in_set.sum() in (1, 11)

    def test_complete_graph_picks_one(self):
        in_set, _ = run_mis(complete(9), num_workers=3)
        assert in_set.sum() == 1

    def test_edgeless_takes_everyone(self):
        g = Graph.from_edges(7, [], directed=False)
        in_set, _ = run_mis(g, num_workers=2)
        assert in_set.all()

    def test_logarithmic_rounds(self, social):
        _, res = run_mis(social, num_workers=4)
        assert res.supersteps < 40  # 2 supersteps x O(log n) rounds


class TestLPA:
    def test_two_cliques(self):
        edges = (
            [(i, j) for i in range(5) for j in range(i + 1, 5)]
            + [(i, j) for i in range(5, 10) for j in range(i + 1, 10)]
            + [(4, 5)]
        )
        g = Graph.from_edges(10, edges, directed=False)
        labels, _ = run_lpa(g, rounds=8, num_workers=3)
        assert len(set(labels[:5].tolist())) == 1
        assert len(set(labels[5:].tolist())) == 1

    def test_isolated_keeps_own_label(self):
        g = Graph.from_edges(3, [(0, 1)], directed=False)
        labels, _ = run_lpa(g, rounds=4, num_workers=2)
        assert labels[2] == 2

    def test_runs_exactly_rounds_plus_one(self):
        g = two_triangles()
        _, res = run_lpa(g, rounds=6, num_workers=2)
        assert res.supersteps == 7

    def test_deterministic(self, social):
        l1, _ = run_lpa(social, rounds=5, num_workers=3)
        l2, _ = run_lpa(social, rounds=5, num_workers=3)
        np.testing.assert_array_equal(l1, l2)

    def test_worker_invariant(self, social):
        l1, _ = run_lpa(social, rounds=5, num_workers=1)
        l4, _ = run_lpa(social, rounds=5, num_workers=4)
        np.testing.assert_array_equal(l1, l4)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    scale=st.integers(min_value=4, max_value=7),
    seed=st.integers(min_value=0, max_value=5),
)
def test_mis_property_random_graphs(scale, seed):
    g = rmat(scale, edge_factor=2, seed=seed, directed=False)
    in_set, _ = run_mis(g, seed=seed, num_workers=3)
    members = set(np.flatnonzero(in_set).tolist())
    for v in range(g.num_vertices):
        nbrs = set(g.neighbors(v).tolist()) - {v}
        if v in members:
            assert not (nbrs & members)
        else:
            assert nbrs & members
