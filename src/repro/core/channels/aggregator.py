"""``Aggregator``: global reduction channel (Table I).

Two exchange rounds per superstep: every worker sends its local partial to
the master (worker 0), which combines them and broadcasts the global value
back.  ``result()`` returns the aggregate of the *previous* superstep's
contributions, matching Pregel's aggregator semantics (Fig. 1 reads
``agg.result()`` one superstep after ``agg.add``).
"""

from __future__ import annotations

import numpy as np

from repro.core.channel import Channel
from repro.core.combiner import Combiner
from repro.core.worker import Worker

__all__ = ["Aggregator"]

_MASTER = 0


class Aggregator(Channel):
    """Global all-reduce over values contributed by vertices.

    Parameters
    ----------
    worker:
        Owning worker.
    combiner:
        Reduction operation and identity (paper: ``Combiner<ValT> c``).
    """

    def __init__(self, worker: Worker, combiner: Combiner) -> None:
        super().__init__(worker)
        self.combiner = combiner
        self.value_codec = combiner.codec
        self._partial = combiner.identity
        self._contributed = False
        self._result = combiner.identity
        self._global = combiner.identity  # master-only scratch

    # -- contributing (during compute) ----------------------------------
    def add(self, value) -> None:
        self._partial = self.combiner.combine(self._partial, value)
        self._contributed = True

    def add_bulk(self, values: np.ndarray) -> None:
        """Contribute a whole array in one call.

        Folds left-to-right (``ufunc.accumulate``), i.e. exactly the
        sequence of combines a loop of :meth:`add` calls would perform —
        so a bulk program's float aggregates are bit-identical to its
        scalar counterpart's, not merely close (``ufunc.reduce`` would
        use pairwise summation and drift in the last ulp).
        """
        values = np.asarray(values, dtype=self.value_codec.dtype)
        if values.size == 0:
            return
        uf = self.combiner.ufunc
        if uf is not None:
            seeded = np.empty(values.size + 1, dtype=values.dtype)
            seeded[0] = self._partial
            seeded[1:] = values
            self._partial = uf.accumulate(seeded)[-1]
        else:
            for v in values:
                self._partial = self.combiner.fn(self._partial, v)
        self._contributed = True

    # -- reading (next superstep) ------------------------------------------
    def result(self):
        """The aggregate of all ``add`` calls from the previous superstep
        (the combiner identity when nothing was contributed)."""
        return self._result

    # -- checkpointing -------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "partial": self._partial,
            "contributed": self._contributed,
            "result": self._result,
            "global": self._global,
        }

    def restore(self, state: dict) -> None:
        # cast scalars back through the codec dtype so restored values are
        # bit-for-bit what the running instance held (not widened floats);
        # structured codecs round-trip as tuples already
        dtype = self.value_codec.dtype
        cast = (lambda v: v) if dtype.names else dtype.type
        self._partial = cast(state["partial"])
        self._contributed = state["contributed"]
        self._result = cast(state["result"])
        self._global = cast(state["global"])

    def migrate_states(self, states: list[dict], ctx) -> list[dict]:
        # worker-keyed scalars, not vertex-keyed: at a superstep boundary
        # the partial is already folded into the broadcast result, and the
        # worker count never changes — every worker keeps its own scalars
        return [dict(s) for s in states]

    # -- round protocol ----------------------------------------------------
    def serialize(self) -> None:
        me = self.worker.worker_id
        if self.round == 0:
            # everyone ships its partial to the master
            self.emit(_MASTER, self.value_codec.encode_one(self._partial))
            if me != _MASTER:
                self.count_net_messages(1)
            self._partial = self.combiner.identity
            self._contributed = False
        elif self.round == 1 and me == _MASTER:
            payload = self.value_codec.encode_one(self._global)
            for peer in range(self.num_workers):
                self.emit(peer, payload)
            self.count_net_messages(self.num_workers - 1)

    def deserialize(self, payloads: list[tuple[int, memoryview]]) -> None:
        if self.round == 0:
            if self.worker.worker_id == _MASTER:
                acc = self.combiner.identity
                for _src, payload in payloads:
                    acc = self.combiner.combine(
                        acc, self.value_codec.decode_one(payload)
                    )
                self._global = acc
        elif self.round == 1:
            for _src, payload in payloads:
                self._result = self.value_codec.decode_one(payload)
        self.round += 1

    def again(self) -> bool:
        # the master requests the broadcast round; everyone participates
        # because the channel group stays active while any instance says so
        return self.round == 1 and self.worker.worker_id == _MASTER
