"""Dedicated tests for the network cost model (`runtime/costmodel.py`).

The model's numbers flow into every reproduced table via
``simulated_time``; these tests pin down its qualitative guarantees
(monotonicity, latency floor, duplex max) and its agreement with the
engine's accounted totals.
"""

import numpy as np
import pytest

from repro.algorithms.pagerank import run_pagerank
from repro.algorithms.wcc import run_wcc
from repro.graph.generators import erdos_renyi
from repro.runtime.costmodel import DEFAULT_NETWORK, NetworkModel


class TestExchangeTime:
    def test_empty_round_costs_the_latency(self):
        m = NetworkModel(latency=0.5)
        assert m.exchange_time(np.zeros(0), np.zeros(0)) == 0.5
        assert m.exchange_time(np.zeros(4), np.zeros(4)) == 0.5

    def test_monotone_in_bytes(self):
        m = DEFAULT_NETWORK
        base = np.array([100.0, 200.0, 50.0])
        t0 = m.exchange_time(base, base)
        for bump in (1, 1000, 10**6):
            heavier = base.copy()
            heavier[1] += bump
            assert m.exchange_time(heavier, base) > t0 or bump == 0

    def test_only_the_busiest_worker_matters(self):
        m = NetworkModel(latency=0.0, bandwidth=100.0)
        send = np.array([100.0, 500.0, 100.0])
        recv = np.array([200.0, 100.0, 100.0])
        # busiest = max over workers of max(send, recv) = 500 bytes
        assert m.exchange_time(send, recv) == pytest.approx(5.0)

    def test_full_duplex_send_recv_overlap(self):
        m = NetworkModel(latency=0.0, bandwidth=1.0)
        send = np.array([10.0])
        recv = np.array([7.0])
        assert m.exchange_time(send, recv) == pytest.approx(10.0)

    def test_per_message_overhead(self):
        base = NetworkModel(latency=0.0, bandwidth=1.0, per_message_overhead=0)
        taxed = NetworkModel(latency=0.0, bandwidth=1.0, per_message_overhead=8)
        send = np.array([100.0, 50.0])
        assert taxed.exchange_time(send, send, messages=10) == pytest.approx(
            base.exchange_time(send, send) + 80.0
        )

    def test_monotone_in_rounds(self):
        # more rounds at the same payload can never be cheaper: each round
        # pays the latency floor again
        m = NetworkModel(latency=1e-3, bandwidth=1e6)
        one_round = m.exchange_time(np.array([1000.0]), np.array([1000.0]))
        two_rounds = 2 * m.exchange_time(np.array([500.0]), np.array([500.0]))
        assert two_rounds > one_round


class TestAgreementWithEngine:
    """simulated_time must equal the per-record sum the model implies."""

    @pytest.fixture(scope="class")
    def graph(self):
        return erdos_renyi(400, 4.0, seed=11, directed=True)

    def test_simulated_time_sums_superstep_records(self, graph):
        _, result = run_pagerank(graph, iterations=5, num_workers=4)
        m = result.metrics
        assert m.simulated_time == pytest.approx(
            sum(r.compute_time_max + r.exchange_time for r in m.records)
        )
        assert result.simulated_time == m.simulated_time

    def test_exchange_floor_latency_times_rounds(self, graph):
        # every accounted round pays at least one latency
        _, result = run_wcc(graph, num_workers=4)
        m = result.metrics
        for rec in m.records:
            assert rec.exchange_time >= rec.rounds * m.network.latency

    def test_lower_bandwidth_costs_more_simulated_time(self, graph):
        fast = NetworkModel(bandwidth=1e9)
        slow = NetworkModel(bandwidth=1e6)
        _, r_fast = run_pagerank(graph, iterations=5, num_workers=4, network=fast)
        _, r_slow = run_pagerank(graph, iterations=5, num_workers=4, network=slow)
        # identical traffic, different modeled time
        assert r_fast.total_net_bytes == r_slow.total_net_bytes
        assert r_slow.simulated_time > r_fast.simulated_time

    def test_zero_latency_zero_traffic_costs_nothing(self):
        m = NetworkModel(latency=0.0)
        assert m.exchange_time(np.zeros(3), np.zeros(3)) == 0.0
