"""Graph substrate: CSR graphs, generators, IO, and partitioners."""

from repro.graph.graph import Graph
from repro.graph.generators import (
    chain,
    random_tree,
    rmat,
    erdos_renyi,
    grid_road,
    star,
    complete,
)
from repro.graph.partition import (
    hash_partition,
    range_partition,
    metis_like_partition,
    partition_quality,
)

__all__ = [
    "Graph",
    "chain",
    "random_tree",
    "rmat",
    "erdos_renyi",
    "grid_road",
    "star",
    "complete",
    "hash_partition",
    "range_partition",
    "metis_like_partition",
    "partition_quality",
]
