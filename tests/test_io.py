"""Unit tests for graph IO."""

import gzip

import numpy as np
import pytest

from repro.graph.graph import Graph
from repro.graph.io import (
    load_edgelist,
    load_npz,
    load_update_stream,
    save_edgelist,
    save_npz,
    save_update_stream,
)
from repro.graph import rmat, grid_road
from repro.streaming import MutationBatch, synthesize_stream


class TestEdgelist:
    def test_roundtrip_directed(self, tmp_path):
        g = rmat(6, edge_factor=3, seed=1)
        path = tmp_path / "g.txt"
        save_edgelist(g, path)
        h = load_edgelist(path)
        assert h.num_vertices == g.num_vertices
        assert h.directed == g.directed
        assert sorted(h.edges()) == sorted(g.edges())

    def test_roundtrip_undirected_weighted(self, tmp_path):
        g = grid_road(6, 6, seed=0)
        path = tmp_path / "g.txt"
        save_edgelist(g, path)
        h = load_edgelist(path)
        assert not h.directed
        assert h.num_edges == g.num_edges
        for v in range(g.num_vertices):
            np.testing.assert_array_equal(
                np.sort(h.neighbors(v)), np.sort(g.neighbors(v))
            )

    def test_headerless_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        g = load_edgelist(path)
        assert g.num_vertices == 3
        assert g.directed
        assert g.num_edges == 2

    def test_isolated_trailing_vertices_preserved(self, tmp_path):
        g = Graph.from_edges(10, [(0, 1)])
        path = tmp_path / "g.txt"
        save_edgelist(g, path)
        assert load_edgelist(path).num_vertices == 10

    def test_partial_weights_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2.0\n1 2\n")
        with pytest.raises(ValueError):
            load_edgelist(path)

    def test_zero_edge_weighted_roundtrip(self, tmp_path):
        # regression: `if weights` treated the empty weight list of a
        # weighted zero-edge graph as "unweighted", silently dropping the
        # flag across a save/load round-trip
        g = Graph(5, np.empty(0, np.int64), np.empty(0, np.int64),
                  weights=np.empty(0, np.float64), directed=True)
        assert g.weighted
        path = tmp_path / "g.txt"
        save_edgelist(g, path)
        h = load_edgelist(path)
        assert h.weighted
        assert h.num_vertices == 5 and h.num_edges == 0

    def test_zero_edge_unweighted_stays_unweighted(self, tmp_path):
        g = Graph.from_edges(4, [])
        path = tmp_path / "g.txt"
        save_edgelist(g, path)
        assert not load_edgelist(path).weighted

    def test_weight_header_mismatch_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# vertices 3 directed 1 weighted 0\n0 1 2.0\n")
        with pytest.raises(ValueError, match="header says unweighted"):
            load_edgelist(path)

    def test_headerless_weighted_file(self, tmp_path):
        # files without the header comment still infer weights from lines
        path = tmp_path / "g.txt"
        path.write_text("0 1 2.0\n1 2 0.5\n")
        g = load_edgelist(path)
        assert g.weighted
        np.testing.assert_array_equal(g.edge_weights(0), [2.0])


class TestGzip:
    def test_edgelist_gz_roundtrip(self, tmp_path):
        g = rmat(6, edge_factor=3, seed=1)
        path = tmp_path / "g.txt.gz"
        save_edgelist(g, path)
        # really compressed, not just renamed
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        h = load_edgelist(path)
        assert h.num_vertices == g.num_vertices
        assert sorted(h.edges()) == sorted(g.edges())

    def test_reads_externally_gzipped_file(self, tmp_path):
        path = tmp_path / "g.txt.gz"
        with gzip.open(path, "wt") as f:
            f.write("0 1\n1 2\n")
        g = load_edgelist(path)
        assert g.num_vertices == 3 and g.num_edges == 2


class TestUpdateStream:
    def test_roundtrip_grouped_by_timestamp(self, tmp_path):
        g = grid_road(6, 6, seed=0)
        batches = synthesize_stream(g, 3, 4, 3, seed=9)
        path = tmp_path / "u.txt"
        save_update_stream(batches, path)
        back = load_update_stream(path)
        assert len(back) == 3
        for a, b in zip(batches, back):
            np.testing.assert_array_equal(a.insert_src, b.insert_src)
            np.testing.assert_array_equal(a.insert_dst, b.insert_dst)
            np.testing.assert_allclose(a.insert_weights, b.insert_weights)
            np.testing.assert_array_equal(a.delete_src, b.delete_src)
            np.testing.assert_array_equal(a.delete_dst, b.delete_dst)

    def test_gz_roundtrip(self, tmp_path):
        batches = [MutationBatch.from_edges(insertions=[(0, 1)], timestamp=5)]
        path = tmp_path / "u.txt.gz"
        save_update_stream(batches, path)
        back = load_update_stream(path)
        assert len(back) == 1 and back[0].timestamp == 5
        assert back[0].num_insertions == 1

    def test_epoch_size_rechunks(self, tmp_path):
        path = tmp_path / "u.txt"
        path.write_text(
            "# comment\n"
            "0 + 1 2\n0 + 2 3\n0 - 4 5\n1 + 6 7\n1 - 8 9\n"
        )
        batches = load_update_stream(path, epoch_size=2)
        assert [b.size for b in batches] == [2, 2, 1]
        by_ts = load_update_stream(path)
        assert [b.size for b in by_ts] == [3, 2]
        assert [b.timestamp for b in by_ts] == [0, 1]

    def test_vertex_mutations_rejected(self, tmp_path):
        batch = MutationBatch.from_edges(insertions=[(0, 1)], add_vertices=2)
        with pytest.raises(ValueError, match="vertex mutations"):
            save_update_stream([batch], tmp_path / "u.txt")

    def test_epoch_size_cuts_before_insert_delete_collision(self, tmp_path):
        path = tmp_path / "u.txt"
        path.write_text("0 + 1 2\n1 - 1 2\n2 - 3 4\n")
        batches = load_update_stream(path, epoch_size=3)
        # the delete of (1,2) — and with it everything after — moves to
        # the next chunk rather than joining its own insert in one batch
        assert [b.size for b in batches] == [1, 2]
        assert batches[0].num_insertions == 1
        assert batches[1].num_deletions == 2
        # reversed endpoint naming collides too (undirected convention)
        path.write_text("0 + 1 2\n1 - 2 1\n")
        assert [b.size for b in load_update_stream(path, epoch_size=2)] == [1, 1]

    def test_malformed_lines_rejected(self, tmp_path):
        path = tmp_path / "u.txt"
        path.write_text("0 * 1 2\n")
        with pytest.raises(ValueError, match="expected"):
            load_update_stream(path)
        path.write_text("0 - 1 2 3.5\n")
        with pytest.raises(ValueError, match="deletions must not"):
            load_update_stream(path)


class TestNpz:
    def test_roundtrip(self, tmp_path):
        g = rmat(7, edge_factor=2, seed=4)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        h = load_npz(path)
        assert h.num_vertices == g.num_vertices
        np.testing.assert_array_equal(h.indptr, g.indptr)
        np.testing.assert_array_equal(h.indices, g.indices)

    def test_roundtrip_weighted_undirected(self, tmp_path):
        g = grid_road(5, 7, seed=2)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        h = load_npz(path)
        assert not h.directed
        assert h.weighted
        np.testing.assert_allclose(h.weights, g.weights)
        assert h.num_input_edges == g.num_input_edges

    def test_zero_edge_weighted_roundtrip(self, tmp_path):
        g = Graph(5, np.empty(0, np.int64), np.empty(0, np.int64),
                  weights=np.empty(0, np.float64), directed=True)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        h = load_npz(path)
        assert h.weighted and h.num_vertices == 5 and h.num_edges == 0
