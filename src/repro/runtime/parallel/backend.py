"""Parent-side orchestration of the multiprocess backend.

:class:`ProcessBackend` takes an already-constructed
:class:`~repro.core.engine.ChannelEngine` and runs its program over real
OS worker processes instead of the in-process simulation loop:

* **shared state** — the graph's CSR arrays and the partition array are
  exported once into ``multiprocessing.shared_memory`` and attached
  read-only by every worker (no per-worker graph copies);
* **barrier protocol** — one duplex control pipe per worker carries
  ``begin`` / ``compute`` / ``exchange`` / ``finalize`` commands and
  their replies, reproducing the simulated superstep loop of Fig. 4
  round for round (the parent is the barrier: no worker starts a phase
  before every worker finished the previous one);
* **peer-to-peer frames** — per-superstep channel frames travel directly
  between worker processes over dedicated pipes as the exact wire bytes
  the codec layer produced; the parent receives only their byte counts
  and feeds them to the same :meth:`MetricsCollector.record_exchange`
  the simulator uses.

Because compute, serialization, and byte accounting all run the same
code on the same inputs, a process run's ``result.data``, per-channel
traffic, and byte/message totals are **bit-identical** to a simulated
run — the parity matrix in ``tests/test_parallel.py`` enforces this.
What stays simulated is the cost model: ``simulated_time`` is still
modeled from byte counts, while ``wall_time`` now reflects genuinely
parallel execution.

Fault tolerance (checkpointing / failure injection / recovery) is a
simulator feature; the engine rejects those options for
``executor="process"`` before this backend is ever constructed.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import TYPE_CHECKING

import numpy as np

from repro.runtime.parallel.protocol import (
    WorkerProcessError,
    recv_supervised,
    send_msg,
)
from repro.runtime.parallel.shm import SharedArrayExport
from repro.runtime.parallel.worker_proc import worker_main

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import ChannelEngine, EngineResult

__all__ = ["ProcessBackend"]


def _mp_context():
    # fork keeps program factories (often closures or dynamically created
    # classes) out of pickle entirely; spawn is the portable fallback and
    # requires picklable factories
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


class ProcessBackend:
    """Runs one engine's program over real worker processes."""

    def __init__(self, engine: "ChannelEngine") -> None:
        self.engine = engine

    def run(self, max_supersteps: int = 100_000) -> "EngineResult":
        from repro.core.engine import EngineResult

        engine = self.engine
        metrics = engine.metrics
        n = engine.num_workers
        ctx = _mp_context()

        export = SharedArrayExport()
        procs: list = []
        control: list = []
        try:
            # the clock starts before export/spawn/attach: those are real
            # costs of running this backend and belong in wall_time, just
            # as channel initialization is inside the simulator's window
            metrics.start_run()
            csr = engine.graph.csr_arrays()
            cfg = {
                "num_vertices": engine.graph.num_vertices,
                "directed": engine.graph.directed,
                "num_workers": n,
                "indptr": export.share(csr["indptr"]),
                "indices": export.share(csr["indices"]),
                "weights": export.share(csr["weights"]) if "weights" in csr else None,
                "owner": export.share(engine.owner),
                "seeds": engine.initial_active,
                "program_factory": engine.program_factory,
                # see attach_array: spawned children must drop their private
                # resource tracker's claim on the parent's segments
                "unregister_shm": ctx.get_start_method() != "fork",
            }

            # frame pipes: one simplex pipe per ordered worker pair
            send_conns: list[dict] = [{} for _ in range(n)]
            recv_conns: list[dict] = [{} for _ in range(n)]
            for src in range(n):
                for dst in range(n):
                    if src == dst:
                        continue
                    r, s = ctx.Pipe(duplex=False)
                    send_conns[src][dst] = s
                    recv_conns[dst][src] = r

            for w in range(n):
                parent_conn, child_conn = ctx.Pipe()
                control.append(parent_conn)
                proc = ctx.Process(
                    target=worker_main,
                    args=(w, cfg, child_conn, send_conns[w], recv_conns[w]),
                    daemon=True,
                    name=f"repro-worker-{w}",
                )
                proc.start()
                procs.append(proc)

            # startup barrier: every worker attached the shared graph and
            # constructed the same channel set the parent validated
            for w in range(n):
                ready = recv_supervised(control[w], w, procs, "startup")
                if ready["num_channels"] != engine.num_channels:
                    raise WorkerProcessError(
                        f"worker process {w} constructed {ready['num_channels']} "
                        f"channels, expected {engine.num_channels}"
                    )

            self._superstep_loop(procs, control, max_supersteps)
            metrics.end_run()

            result = EngineResult(metrics=metrics)
            sync = engine.sync_state
            for w in range(n):
                send_msg(control[w], {"cmd": "finalize", "sync": sync})
            for w in range(n):
                reply = recv_supervised(control[w], w, procs, "finalize")
                result.data.update(reply["data"])
                if sync:
                    self._restore_worker(w, reply["state"])

            for conn in control:
                send_msg(conn, {"cmd": "stop"})
            for proc in procs:
                proc.join(timeout=10)
            return result
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5)
            export.close()

    # -- superstep loop (mirrors ChannelEngine.run / _exchange_phase) --------
    def _superstep_loop(self, procs, control, max_supersteps: int) -> None:
        engine = self.engine
        metrics = engine.metrics
        n = engine.num_workers

        while True:
            for conn in control:
                send_msg(conn, {"cmd": "begin"})
            total_active = 0
            for w in range(n):
                reply = recv_supervised(control[w], w, procs, "superstep begin")
                total_active += reply["active"]
            if total_active == 0:
                break
            engine.step_num += 1
            if engine.step_num > max_supersteps:
                raise RuntimeError(
                    f"exceeded max_supersteps={max_supersteps}; "
                    "the program may not terminate"
                )
            metrics.start_superstep(total_active)

            # 1. vertex compute, genuinely parallel across processes
            for conn in control:
                send_msg(conn, {"cmd": "compute"})
            for w in range(n):
                reply = recv_supervised(control[w], w, procs, "compute")
                self._merge(w, reply)

            # 2. channel exchange rounds
            group_active = [True] * engine.num_channels
            round_num = 0
            while any(group_active):
                for conn in control:
                    send_msg(
                        conn,
                        {
                            "cmd": "exchange",
                            "group_active": group_active,
                            "round": round_num,
                        },
                    )
                sent = np.zeros((n, n), dtype=np.int64)
                next_active = [False] * engine.num_channels
                for w in range(n):
                    reply = recv_supervised(control[w], w, procs, "exchange")
                    self._merge(w, reply)
                    sent[w] = reply["sent"]
                    for cid, flag in enumerate(reply["next_active"]):
                        if flag:
                            next_active[cid] = True
                local_bytes = int(np.trace(sent))
                send_bytes = sent.sum(axis=1) - np.diag(sent)
                recv_bytes = sent.sum(axis=0) - np.diag(sent)
                metrics.record_exchange(send_bytes, recv_bytes, local_bytes=local_bytes)
                group_active = next_active
                round_num += 1

            metrics.end_superstep()

    def _merge(self, worker_id: int, reply: dict) -> None:
        """Fold one worker's phase reply into the run's metrics."""
        metrics = self.engine.metrics
        metrics.record_compute(worker_id, reply["seconds"])
        counters = reply["counters"]
        if counters["messages"]:
            metrics.count_messages(counters["messages"])
        for label, (net, local, msgs) in counters["channels"].items():
            entry = metrics.channel_traffic.setdefault(label, [0, 0, 0])
            entry[0] += net
            entry[1] += local
            entry[2] += msgs

    def _restore_worker(self, w: int, state: dict) -> None:
        """Load a child's end-of-run state into the parent's worker ``w``
        (checkpoint capture format), so post-run introspection of
        ``engine.workers`` sees what actually ran."""
        worker = self.engine.workers[w]
        worker.program.load_state_dict(state["program"])
        worker.restore_flags(state["flags"])
        for channel, channel_state in zip(worker.channels, state["channels"]):
            channel.restore(channel_state)
