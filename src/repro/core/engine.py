"""The channel engine: the superstep loop of Fig. 4.

The engine creates one :class:`~repro.core.worker.Worker` per partition
block, instantiates the user's :class:`~repro.core.program.VertexProgram`
on each, and then alternates vertex compute with channel exchange rounds
until every vertex has voted to halt and no channel requests another round.

Both compute time (max over workers, i.e. parallel makespan) and modeled
network time are accumulated into the run's
:class:`~repro.runtime.metrics.MetricsCollector`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.worker import Worker
from repro.graph.graph import Graph
from repro.graph.partition import hash_partition
from repro.runtime.buffers import BufferExchange
from repro.runtime.costmodel import NetworkModel, DEFAULT_NETWORK
from repro.runtime.metrics import MetricsCollector

__all__ = ["ChannelEngine", "EngineResult"]


@dataclass
class EngineResult:
    """Outcome of one engine run.

    The pass-through properties mirror the most-used
    :class:`~repro.runtime.metrics.MetricsCollector` totals so callers
    (benchmarks, examples) don't reach into ``result.metrics`` internals.
    """

    data: dict = field(default_factory=dict)
    metrics: MetricsCollector | None = None

    @property
    def supersteps(self) -> int:
        return self.metrics.supersteps if self.metrics else 0

    @property
    def total_net_bytes(self) -> int:
        """Serialized bytes that crossed worker boundaries."""
        return self.metrics.total_net_bytes if self.metrics else 0

    @property
    def total_messages(self) -> int:
        """Network messages counted by all channels."""
        return self.metrics.total_messages if self.metrics else 0

    @property
    def simulated_time(self) -> float:
        """Modeled parallel runtime (max compute + network per superstep)."""
        return self.metrics.simulated_time if self.metrics else 0.0


class ChannelEngine:
    """Runs a channel-based vertex program over a partitioned graph.

    Parameters
    ----------
    graph:
        The input :class:`~repro.graph.graph.Graph`.
    program_factory:
        Callable ``(worker) -> VertexProgram``; typically the program class
        itself.
    num_workers:
        Number of simulated workers (the paper used an 8-node cluster).
    partition:
        Optional vertex->worker array; defaults to hash partitioning, the
        Pregel default ("vertices are randomly assigned to workers").
    network:
        Cost model for the simulated interconnect.
    """

    def __init__(
        self,
        graph: Graph,
        program_factory: Callable[[Worker], object],
        num_workers: int = 8,
        partition: np.ndarray | None = None,
        network: NetworkModel = DEFAULT_NETWORK,
    ) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.graph = graph
        self.num_workers = num_workers
        if partition is None:
            partition = hash_partition(graph.num_vertices, num_workers)
        partition = np.asarray(partition, dtype=np.int64)
        if partition.shape != (graph.num_vertices,):
            raise ValueError("partition must assign every vertex")
        if partition.size and (partition.min() < 0 or partition.max() >= num_workers):
            raise ValueError("partition assigns vertices to unknown workers")
        self.owner = partition
        self.metrics = MetricsCollector(num_workers=num_workers, network=network)
        self.step_num = 0

        self.workers: list[Worker] = []
        for w in range(num_workers):
            local_ids = np.flatnonzero(partition == w)
            self.workers.append(Worker(self, w, local_ids))
        for worker in self.workers:
            worker.program = program_factory(worker)

        nchan = {len(w.channels) for w in self.workers}
        if len(nchan) != 1:
            raise RuntimeError(
                "programs must construct the same channels on every worker"
            )
        self.num_channels = nchan.pop()
        self._exchange = BufferExchange(self.metrics)

    # -- main loop ---------------------------------------------------------
    def run(self, max_supersteps: int = 100_000) -> EngineResult:
        metrics = self.metrics
        metrics.start_run()

        for worker in self.workers:
            for channel in worker.channels:
                channel.initialize()

        while True:
            # phase controllers may wake vertices for the upcoming superstep
            for worker in self.workers:
                worker.program.before_superstep()
            active_sets = [w.begin_superstep() for w in self.workers]
            total_active = sum(a.size for a in active_sets)
            if total_active == 0:
                break
            self.step_num += 1
            if self.step_num > max_supersteps:
                raise RuntimeError(
                    f"exceeded max_supersteps={max_supersteps}; "
                    "the program may not terminate"
                )
            metrics.start_superstep(total_active)

            # 1. vertex compute (parallel across workers -> charge max);
            # each worker dispatches scalar (per-vertex) or bulk
            # (whole-active-set) per its program's is_bulk flag
            for worker, active in zip(self.workers, active_sets):
                t0 = time.perf_counter()
                worker.run_compute(active)
                metrics.record_compute(worker.worker_id, time.perf_counter() - t0)

            # 2. channel exchange rounds
            self._exchange_phase()
            metrics.end_superstep()

        metrics.end_run()

        result = EngineResult(metrics=metrics)
        for worker in self.workers:
            result.data.update(worker.program.finalize())
        return result

    def _exchange_phase(self) -> None:
        metrics = self.metrics
        for worker in self.workers:
            for channel in worker.channels:
                channel.reset_round()

        group_active = [True] * self.num_channels

        while any(group_active):
            # serialize
            wrote = False
            for worker in self.workers:
                t0 = time.perf_counter()
                for cid, channel in enumerate(worker.channels):
                    if group_active[cid]:
                        channel.serialize()
                metrics.record_compute(worker.worker_id, time.perf_counter() - t0)
                net, local = worker.buffers.out_nbytes()
                wrote = wrote or net > 0 or local > 0

            if not wrote and not any(group_active):  # pragma: no cover
                break

            # pairwise exchange (accounted by the cost model)
            self._exchange.exchange([w.buffers for w in self.workers])

            # deserialize + decide on another round
            next_active = [False] * self.num_channels
            for worker in self.workers:
                t0 = time.perf_counter()
                routed = worker.route_inbox()
                for cid, channel in enumerate(worker.channels):
                    if group_active[cid]:
                        channel.deserialize(routed.get(cid, []))
                        if channel.again():
                            next_active[cid] = True
                    elif cid in routed:  # pragma: no cover - defensive
                        raise RuntimeError(
                            f"data arrived for inactive channel {cid}"
                        )
                metrics.record_compute(worker.worker_id, time.perf_counter() - t0)
            group_active = next_active
