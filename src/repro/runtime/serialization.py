"""Binary serialization layer for channel buffers.

Every channel writes its traffic into raw byte buffers (one per destination
worker) and reads traffic back out of the buffers it receives.  To keep the
byte accounting honest — message sizes in the paper's tables are real wire
sizes — all values cross worker boundaries through the codecs defined here,
never as live Python object references.

A :class:`Codec` is backed by a NumPy dtype so that bulk encode/decode is a
single ``tobytes``/``frombuffer`` call; this is the Python idiom closest to
the paper's C++ memcpy-style (de)serialization and keeps the simulator's
constant factors low enough for the benchmark tables to be meaningful.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Codec",
    "INT32",
    "INT64",
    "FLOAT32",
    "FLOAT64",
    "UINT8",
    "pair_codec",
    "struct_codec",
    "BufferWriter",
    "BufferReader",
]


class Codec:
    """A fixed-size binary codec backed by a NumPy dtype.

    Parameters
    ----------
    name:
        Human-readable name used in reprs and error messages.
    dtype:
        Any NumPy dtype (scalar or structured).  ``itemsize`` of this dtype
        is the wire size of one encoded value.
    """

    __slots__ = ("name", "dtype", "itemsize")

    def __init__(self, name: str, dtype: np.dtype | str | list) -> None:
        self.name = name
        self.dtype = np.dtype(dtype)
        self.itemsize = self.dtype.itemsize

    # -- bulk operations (preferred) -----------------------------------
    def encode_array(self, values: Sequence | np.ndarray) -> bytes:
        """Encode a sequence of values into a contiguous byte string."""
        arr = np.asarray(values, dtype=self.dtype)
        return arr.tobytes()

    def decode_array(self, data: bytes | memoryview, count: int = -1) -> np.ndarray:
        """Decode a byte string back into a (read-only) NumPy array."""
        return np.frombuffer(data, dtype=self.dtype, count=count)

    # -- scalar operations ----------------------------------------------
    def encode_one(self, value) -> bytes:
        if self.dtype.names:
            arr = np.zeros(1, dtype=self.dtype)
            arr[0] = tuple(value)
            return arr.tobytes()
        return self.dtype.type(value).tobytes()

    def decode_one(self, data: bytes | memoryview, offset: int = 0):
        out = np.frombuffer(data, dtype=self.dtype, count=1, offset=offset)[0]
        if self.dtype.names:
            return tuple(out)
        return out.item()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Codec({self.name}, {self.dtype}, {self.itemsize}B)"


#: Standard scalar codecs mirroring the C++ prototype's common message types.
INT32 = Codec("int32", np.int32)
INT64 = Codec("int64", np.int64)
FLOAT32 = Codec("float32", np.float32)
FLOAT64 = Codec("float64", np.float64)
UINT8 = Codec("uint8", np.uint8)


def pair_codec(first: Codec, second: Codec, name: str | None = None) -> Codec:
    """A codec for (a, b) pairs, e.g. the (dst, value) wire format of
    Pregel's monolithic messages."""
    name = name or f"pair<{first.name},{second.name}>"
    return Codec(name, [("a", first.dtype), ("b", second.dtype)])


def struct_codec(fields: Iterable[tuple[str, Codec]], name: str | None = None) -> Codec:
    """A codec for a named-field struct, e.g. MSF's 4-integer edge record."""
    fields = list(fields)
    name = name or "struct<" + ",".join(f"{n}:{c.name}" for n, c in fields) + ">"
    return Codec(name, [(n, c.dtype) for n, c in fields])


class BufferWriter:
    """Appends mixed binary content to a growable buffer.

    Channels use one writer per destination worker.  Headers (counts, tags)
    are written as scalars; payloads as bulk arrays.
    """

    __slots__ = ("_chunks", "_nbytes")

    def __init__(self) -> None:
        self._chunks: list[bytes] = []
        self._nbytes = 0

    def write_scalar(self, value, codec: Codec) -> None:
        chunk = codec.encode_one(value)
        self._chunks.append(chunk)
        self._nbytes += len(chunk)

    def write_array(self, values, codec: Codec) -> None:
        chunk = codec.encode_array(values)
        self._chunks.append(chunk)
        self._nbytes += len(chunk)

    def write_bytes(self, data: bytes) -> None:
        self._chunks.append(bytes(data))
        self._nbytes += len(data)

    @property
    def nbytes(self) -> int:
        return self._nbytes

    def getvalue(self) -> bytes:
        if len(self._chunks) == 1:
            return self._chunks[0]
        return b"".join(self._chunks)

    def clear(self) -> None:
        self._chunks.clear()
        self._nbytes = 0


class BufferReader:
    """Sequentially consumes binary content written by a :class:`BufferWriter`."""

    __slots__ = ("_view", "_offset")

    def __init__(self, data: bytes | bytearray | memoryview) -> None:
        self._view = memoryview(data)
        self._offset = 0

    def read_scalar(self, codec: Codec):
        value = codec.decode_one(self._view, offset=self._offset)
        self._offset += codec.itemsize
        return value

    def read_array(self, count: int, codec: Codec) -> np.ndarray:
        nbytes = count * codec.itemsize
        arr = np.frombuffer(self._view, dtype=codec.dtype, count=count, offset=self._offset)
        self._offset += nbytes
        return arr

    @property
    def remaining(self) -> int:
        return len(self._view) - self._offset

    def at_end(self) -> bool:
        return self._offset >= len(self._view)
