"""Boruvka MSF: both systems match networkx MST weight on many shapes."""

import numpy as np
import pytest

from repro.algorithms.msf import run_msf
from repro.graph import grid_road, rmat
from repro.graph.graph import Graph
from repro.pregel_algorithms.msf import run_msf_pregel
from helpers import nx_mst_weight

# wire weights are float32; compare accordingly
WTOL = 1e-3


def weighted_graph(n, edges):
    src = [e[0] for e in edges]
    dst = [e[1] for e in edges]
    w = [e[2] for e in edges]
    return Graph(n, np.array(src), np.array(dst), weights=np.array(w), directed=False)


@pytest.fixture(scope="module")
def road():
    return grid_road(12, 15, seed=2)


@pytest.fixture(scope="module")
def powerlaw():
    return rmat(7, edge_factor=3, seed=6, directed=False, weighted=True)


RUNNERS = [("channel", run_msf), ("pregel", run_msf_pregel)]


@pytest.mark.parametrize("name,runner", RUNNERS, ids=[r[0] for r in RUNNERS])
class TestCorrectness:
    def test_road_network(self, road, name, runner):
        forest, weight, _ = runner(road, num_workers=4)
        assert weight == pytest.approx(nx_mst_weight(road), rel=WTOL)

    def test_power_law(self, powerlaw, name, runner):
        forest, weight, _ = runner(powerlaw, num_workers=4)
        assert weight == pytest.approx(nx_mst_weight(powerlaw), rel=WTOL)

    def test_triangle(self, name, runner):
        g = weighted_graph(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)])
        forest, weight, _ = runner(g, num_workers=2)
        assert weight == pytest.approx(3.0, rel=WTOL)
        assert len(forest) == 2

    def test_disconnected_forest(self, name, runner):
        g = weighted_graph(6, [(0, 1, 1.0), (1, 2, 2.0), (3, 4, 5.0), (4, 5, 1.5)])
        forest, weight, _ = runner(g, num_workers=3)
        assert len(forest) == 4  # spanning forest of two components
        assert weight == pytest.approx(9.5, rel=WTOL)

    def test_isolated_vertices(self, name, runner):
        g = weighted_graph(4, [(0, 1, 2.0)])
        forest, weight, _ = runner(g, num_workers=2)
        assert len(forest) == 1
        assert weight == pytest.approx(2.0, rel=WTOL)

    def test_edgeless_graph(self, name, runner):
        g = Graph.from_edges(5, [], directed=False)
        forest, weight, _ = runner(g, num_workers=2)
        assert forest == [] and weight == 0.0

    def test_parallel_paths(self, name, runner):
        # a 4-cycle: MST drops the heaviest edge
        g = weighted_graph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 9.0)])
        forest, weight, _ = runner(g, num_workers=2)
        assert weight == pytest.approx(3.0, rel=WTOL)

    def test_forest_is_acyclic_and_spanning(self, road, name, runner):
        import networkx as nx

        forest, _, _ = runner(road, num_workers=4)
        F = nx.Graph()
        F.add_nodes_from(range(road.num_vertices))
        F.add_edges_from((int(u), int(v)) for u, v, _ in forest)
        assert nx.number_of_edges(F) == len(forest)  # no duplicates
        assert not nx.cycle_basis(F)  # acyclic
        # same number of components as the input graph
        G = nx.Graph()
        G.add_nodes_from(range(road.num_vertices))
        s, d = road.edge_array()
        G.add_edges_from(zip(s.tolist(), d.tolist()))
        assert nx.number_connected_components(F) == nx.number_connected_components(G)


class TestTraffic:
    def test_rejects_directed(self):
        g = Graph.from_edges(2, [(0, 1)], directed=True)
        with pytest.raises(ValueError):
            run_msf(g)
        with pytest.raises(ValueError):
            run_msf_pregel(g)

    def test_channel_version_lighter_than_pregel(self, road):
        """Table IV MSF row: heterogeneous channel types vs the widened
        monolithic union."""
        part = np.arange(road.num_vertices) % 4
        _, _, rc = run_msf(road, num_workers=4, partition=part)
        _, _, rp = run_msf_pregel(road, num_workers=4, partition=part)
        assert rc.metrics.total_net_bytes < rp.metrics.total_net_bytes
        assert rc.metrics.total_messages == rp.metrics.total_messages
