"""The per-vertex handle passed to ``compute()``.

One mutable handle is reused across the compute loop (the flyweight idiom —
allocating a fresh object per vertex per superstep would dominate the
profile).  Programs keep vertex *state* in per-worker NumPy arrays indexed
by ``v.local``; the handle only carries identity, adjacency and the
vote-to-halt hook.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.worker import Worker

__all__ = ["Vertex"]


class Vertex:
    """Handle for the vertex currently being computed.

    Attributes
    ----------
    id:
        Global vertex identifier.
    local:
        Index of this vertex within its worker (``0..num_local-1``); use it
        to index per-worker state arrays.
    """

    __slots__ = ("_worker", "id", "local")

    def __init__(self, worker: "Worker") -> None:
        self._worker = worker
        self.id = -1
        self.local = -1

    def _bind(self, local_idx: int) -> "Vertex":
        self.local = local_idx
        self.id = int(self._worker.local_ids[local_idx])
        return self

    # -- adjacency ------------------------------------------------------
    @property
    def out_degree(self) -> int:
        return self._worker.graph.out_degree(self.id)

    @property
    def edges(self) -> np.ndarray:
        """Global IDs of this vertex's out-neighbors."""
        return self._worker.graph.neighbors(self.id)

    @property
    def edge_weights(self) -> np.ndarray:
        return self._worker.graph.edge_weights(self.id)

    # -- control ---------------------------------------------------------
    def vote_to_halt(self) -> None:
        self._worker.halt(self.local)

    @property
    def step_num(self) -> int:
        return self._worker.step_num

    def __repr__(self) -> str:  # pragma: no cover
        return f"Vertex(id={self.id}, local={self.local})"
